// Package metrics renders Gremlin's operational counters in the
// Prometheus text exposition format (version 0.0.4) without depending on
// the Prometheus client library. The agent and the log store each expose a
// GET /metrics endpoint built from a Writer, so any Prometheus-compatible
// scraper can watch a live test run.
//
// The package also provides Histogram, a fixed-bucket cumulative histogram
// whose Observe is a few atomic adds — cheap enough for the proxy data
// path — and ParseExposition, a strict parser for the same dialect our
// writers emit. The telemetry plane scrapes with it; Lint wraps it as the
// format checker tests use to keep the hand-rolled exposition parseable.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Writer accumulates one scrape's worth of metric families and renders
// them as Prometheus text exposition. It is not safe for concurrent use;
// build a fresh Writer per scrape.
type Writer struct {
	b    strings.Builder
	seen map[string]bool
}

// NewWriter creates an empty Writer.
func NewWriter() *Writer {
	return &Writer{seen: make(map[string]bool)}
}

// header emits the # HELP / # TYPE preamble once per metric family.
func (w *Writer) header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// Counter emits one counter sample. labels alternate name, value
// ("rule", "r1"); repeated calls with the same metric name append samples
// to the same family.
func (w *Writer) Counter(name, help string, value float64, labels ...string) {
	w.header(name, help, "counter")
	w.sample(name, labels, value)
}

// Gauge emits one gauge sample.
func (w *Writer) Gauge(name, help string, value float64, labels ...string) {
	w.header(name, help, "gauge")
	w.sample(name, labels, value)
}

// Histogram emits a histogram family (cumulative _bucket series plus _sum
// and _count) from a snapshot.
func (w *Writer) Histogram(name, help string, snap HistogramSnapshot, labels ...string) {
	w.header(name, help, "histogram")
	for i, bound := range snap.Bounds {
		w.sample(name+"_bucket", append(append([]string{}, labels...), "le", formatFloat(bound)), float64(snap.Cumulative[i]))
	}
	w.sample(name+"_bucket", append(append([]string{}, labels...), "le", "+Inf"), float64(snap.Count))
	w.sample(name+"_sum", labels, snap.Sum)
	w.sample(name+"_count", labels, float64(snap.Count))
}

func (w *Writer) sample(name string, labels []string, value float64) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			// %q escapes quotes, backslashes, and newlines as the
			// exposition format requires.
			fmt.Fprintf(&w.b, "%s=%q", labels[i], labels[i+1])
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatFloat(value))
	w.b.WriteByte('\n')
}

// String returns the accumulated exposition text.
func (w *Writer) String() string { return w.b.String() }

// WriteTo writes the accumulated exposition text to wr.
func (w *Writer) WriteTo(wr io.Writer) (int64, error) {
	n, err := io.WriteString(wr, w.b.String())
	return int64(n), err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// DefaultLatencyBounds are the upper bucket bounds, in seconds, used for
// request-latency histograms (Prometheus' conventional DefBuckets).
var DefaultLatencyBounds = []float64{
	.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// use. Observe costs two atomic adds plus an atomic CAS for the sum, so it
// can sit on the proxy data path.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending upper bucket
// bounds. Nil bounds select DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Latency buckets are front-loaded: a linear scan beats binary search
	// for the common small values and costs the same worst case at n=11.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view of a Histogram for one
// scrape: per-bound cumulative counts, total count, and sum.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may tear count against buckets by a few samples; scrape output
// remains monotone and well-formed.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		snap.Cumulative[i] = cum
	}
	// Guard the exposition invariant bucket{le=b} <= count under torn
	// concurrent reads.
	if n := len(snap.Cumulative); n > 0 && snap.Cumulative[n-1] > snap.Count {
		snap.Count = snap.Cumulative[n-1]
	}
	return snap
}

// Count reports the number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sample is one parsed exposition sample. Name keeps any histogram
// suffix (_bucket, _sum, _count); the owning Family carries the base name.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: its # TYPE / # HELP declaration and every
// sample that belongs to it, in exposition order. A histogram family
// collects its _bucket, _sum, and _count samples.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, or untyped
	Help    string
	Samples []Sample
}

// ParseExposition parses Prometheus text exposition (version 0.0.4) into
// metric families, in declaration order. It is strict where our own
// writers are strict: every sample must follow a # TYPE for its family, no
// family may be declared twice, and histogram families must carry an
// le="+Inf" bucket — so it doubles as the format checker behind Lint.
func ParseExposition(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byName := make(map[string]*Family)
	var order []string
	infSeen := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("metrics: line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if fields[1] == "HELP" {
				f := byName[name]
				if f == nil {
					f = &Family{Name: name}
					byName[name] = f
					order = append(order, name)
				}
				if i := strings.Index(line, name); i >= 0 {
					f.Help = strings.TrimSpace(line[i+len(name):])
				}
				continue
			}
			f := byName[name]
			if f != nil && f.Type != "" {
				return nil, fmt.Errorf("metrics: line %d: family %s declared twice", lineNo, name)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE %q", lineNo, line)
			}
			if f == nil {
				f = &Family{Name: name}
				byName[name] = f
				order = append(order, name)
			}
			f.Type = fields[3]
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if f := byName[base]; f != nil && f.Type == "histogram" {
					family = base
				}
			}
		}
		f := byName[family]
		if f == nil || f.Type == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if f.Type == "histogram" && strings.HasSuffix(name, "_bucket") {
			if le, ok := labels["le"]; ok && le == "+Inf" {
				infSeen[family] = true
			}
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, 0, len(order))
	for _, name := range order {
		f := byName[name]
		if f.Type == "" {
			// HELP without TYPE: our writers never emit this, and a sample
			// under it would already have errored above.
			f.Type = "untyped"
		}
		if f.Type == "histogram" && !infSeen[name] {
			return nil, fmt.Errorf("metrics: histogram %s lacks an le=\"+Inf\" bucket", name)
		}
		out = append(out, *f)
	}
	return out, nil
}

// Lint checks that text is well-formed Prometheus text exposition. It is
// a thin wrapper over ParseExposition, kept for test call sites that only
// care about validity.
func Lint(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}

// parseSample parses `name[{labels}] value` into parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			val, uerr := strconv.Unquote(strings.TrimSpace(pair[eq+1:]))
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("unquote label %q: %v", pair, uerr)
			}
			labels[strings.TrimSpace(pair[:eq])] = val
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("expected `name value`, got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	v := strings.TrimSpace(rest)
	switch v {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	default:
		value, err = strconv.ParseFloat(v, 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad value %q", v)
		}
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var (
		out      []string
		start    int
		inQuote  bool
		escaping bool
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaping:
			escaping = false
		case c == '\\':
			escaping = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			if p := strings.TrimSpace(s[start:i]); p != "" {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// SortedKeys returns m's keys in sorted order — a small helper so metric
// families render deterministically.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
