package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds: web -> {auth, catalog}; auth -> db; catalog -> db.
func diamond() *Graph {
	g := New()
	g.AddEdge("web", "auth")
	g.AddEdge("web", "catalog")
	g.AddEdge("auth", "db")
	g.AddEdge("catalog", "db")
	return g
}

func TestAddAndQuery(t *testing.T) {
	g := diamond()
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if !g.Has("web") || g.Has("nope") {
		t.Fatal("Has misbehaves")
	}
	if !g.HasEdge("web", "auth") || g.HasEdge("auth", "web") {
		t.Fatal("HasEdge misbehaves")
	}
	want := []string{"auth", "catalog", "db", "web"}
	if got := g.Services(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Services = %v, want %v", got, want)
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New()
	g.AddEdge("a", "a")
	if !g.Has("a") {
		// AddEdge with src == dst is a no-op entirely.
		g.AddService("a")
	}
	if g.HasEdge("a", "a") {
		t.Fatal("self edge must be ignored")
	}
}

func TestDependentsAndDependencies(t *testing.T) {
	g := diamond()
	deps, err := g.Dependents("db")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"auth", "catalog"}; !reflect.DeepEqual(deps, want) {
		t.Fatalf("Dependents(db) = %v, want %v", deps, want)
	}
	out, err := g.Dependencies("web")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"auth", "catalog"}; !reflect.DeepEqual(out, want) {
		t.Fatalf("Dependencies(web) = %v, want %v", out, want)
	}
	if _, err := g.Dependents("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
	if _, err := g.Dependencies("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond()
	if got := g.Roots(); !reflect.DeepEqual(got, []string{"web"}) {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []string{"db"}) {
		t.Fatalf("Leaves = %v", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := diamond()
	want := []Edge{
		{Src: "auth", Dst: "db"},
		{Src: "catalog", Dst: "db"},
		{Src: "web", Dst: "auth"},
		{Src: "web", Dst: "catalog"},
	}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestFromEdgesRoundTrip(t *testing.T) {
	g := diamond()
	g2 := FromEdges(g.Edges())
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) || !reflect.DeepEqual(g.Services(), g2.Services()) {
		t.Fatal("FromEdges(Edges()) differs")
	}
}

func TestCut(t *testing.T) {
	g := diamond()
	cut, err := g.Cut([]string{"web", "auth"}, []string{"catalog", "db"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{Src: "auth", Dst: "db"}, {Src: "web", Dst: "catalog"}}
	if !reflect.DeepEqual(cut, want) {
		t.Fatalf("Cut = %v, want %v", cut, want)
	}
}

func TestCutErrors(t *testing.T) {
	g := diamond()
	if _, err := g.Cut([]string{"ghost"}, []string{"db"}); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Cut([]string{"web"}, []string{"ghost"}); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Cut([]string{"web"}, []string{"web"}); err == nil {
		t.Fatal("want error when a service is on both sides")
	}
}

func TestCutPartial(t *testing.T) {
	// Services outside both partitions keep their edges.
	g := diamond()
	cut, err := g.Cut([]string{"auth"}, []string{"db"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []Edge{{Src: "auth", Dst: "db"}}; !reflect.DeepEqual(cut, want) {
		t.Fatalf("Cut = %v, want %v", cut, want)
	}
}

func TestHasCycle(t *testing.T) {
	if diamond().HasCycle() {
		t.Fatal("diamond is acyclic")
	}
	g := diamond()
	g.AddEdge("db", "web")
	if !g.HasCycle() {
		t.Fatal("cycle not detected")
	}
	empty := New()
	if empty.HasCycle() {
		t.Fatal("empty graph is acyclic")
	}
	two := New()
	two.AddEdge("a", "b")
	two.AddEdge("b", "a")
	if !two.HasCycle() {
		t.Fatal("2-cycle not detected")
	}
}

func TestDownstreamUpstream(t *testing.T) {
	g := diamond()
	down, err := g.Downstream("web")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"auth", "catalog", "db"}; !reflect.DeepEqual(down, want) {
		t.Fatalf("Downstream(web) = %v", down)
	}
	up, err := g.Upstream("db")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"auth", "catalog", "web"}; !reflect.DeepEqual(up, want) {
		t.Fatalf("Upstream(db) = %v", up)
	}
	if _, err := g.Downstream("ghost"); err == nil {
		t.Fatal("want error")
	}
	if _, err := g.Upstream("ghost"); err == nil {
		t.Fatal("want error")
	}
}

func TestDOT(t *testing.T) {
	dot := diamond().DOT()
	for _, frag := range []string{`"web" -> "auth"`, `"catalog" -> "db"`, "digraph app"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddEdge("web", "newservice")
	if g.Has("newservice") {
		t.Fatal("Clone shares state with original")
	}
	if !reflect.DeepEqual(g.Edges(), diamond().Edges()) {
		t.Fatal("original mutated")
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") {
		t.Fatal("zero-value graph should accept edges")
	}
}

// Property: for every edge (s,d), s is in Dependents(d) and d is in
// Dependencies(s) — the in/out indexes are duals.
func TestDependentsDependenciesDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed uint16) bool {
		n := int(seed%20) + 2
		g := New()
		for i := 0; i < n; i++ {
			g.AddService("s" + strconv.Itoa(i))
		}
		for i := 0; i < n*2; i++ {
			src := "s" + strconv.Itoa(rng.Intn(n))
			dst := "s" + strconv.Itoa(rng.Intn(n))
			g.AddEdge(src, dst)
		}
		for _, e := range g.Edges() {
			deps, err := g.Dependents(e.Dst)
			if err != nil || !contains(deps, e.Src) {
				return false
			}
			outs, err := g.Dependencies(e.Src)
			if err != nil || !contains(outs, e.Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
