// Package graph models the logical application graph: a directed graph
// whose vertices are microservices and whose edges are caller→callee
// relationships. The operator provides this graph to the Recipe Translator,
// which uses it to decompose high-level failure scenarios into per-edge
// fault-injection rules (e.g. Crash(S) aborts requests from every dependent
// of S).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownService is returned when a named service is not in the graph.
var ErrUnknownService = errors.New("graph: unknown service")

// Protocols an edge can carry. ProtocolHTTP is the default; ProtocolTCP
// marks a raw byte-stream dependency (database, cache, broker) served by
// the agents' L4 stream relays instead of the HTTP proxy.
const (
	ProtocolHTTP = "http"
	ProtocolTCP  = "tcp"
)

// Edge is one caller→callee dependency.
//
// Protocol is part of the wire form only (graph JSON files); in-memory
// edges compare by (Src, Dst) alone and Graph.Edges returns them with
// Protocol unset — query Graph.Protocol for an edge's protocol.
type Edge struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Protocol string `json:"protocol,omitempty"`
}

// Graph is a directed application dependency graph. The zero value is an
// empty graph ready for use. Graph is not safe for concurrent mutation;
// recipes treat it as immutable after construction.
type Graph struct {
	out map[string]map[string]bool // src -> set of dst
	in  map[string]map[string]bool // dst -> set of src
	// proto holds per-edge protocols for edges that are not plain HTTP;
	// absence means ProtocolHTTP.
	proto map[Edge]string
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[string]map[string]bool),
		in:  make(map[string]map[string]bool),
	}
}

// FromEdges builds a graph from an edge list. Vertices are created
// implicitly; edges carrying a non-default Protocol keep it.
func FromEdges(edges []Edge) *Graph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e.Src, e.Dst)
		if e.Protocol != "" && e.Protocol != ProtocolHTTP {
			g.SetProtocol(e.Src, e.Dst, e.Protocol)
		}
	}
	return g
}

// AddService ensures the named service exists as a vertex, even if it has
// no edges (a root or leaf service).
func (g *Graph) AddService(name string) {
	g.ensure()
	if _, ok := g.out[name]; !ok {
		g.out[name] = make(map[string]bool)
	}
	if _, ok := g.in[name]; !ok {
		g.in[name] = make(map[string]bool)
	}
}

// AddEdge records that src calls dst, creating either vertex as needed.
// Self-edges are ignored: a service does not call itself through the
// network.
func (g *Graph) AddEdge(src, dst string) {
	if src == dst {
		return
	}
	g.AddService(src)
	g.AddService(dst)
	g.out[src][dst] = true
	g.in[dst][src] = true
}

func (g *Graph) ensure() {
	if g.out == nil {
		g.out = make(map[string]map[string]bool)
	}
	if g.in == nil {
		g.in = make(map[string]map[string]bool)
	}
}

// SetProtocol marks the src→dst edge as carrying the given protocol
// (e.g. ProtocolTCP), creating the edge if needed. Setting ProtocolHTTP
// (or "") restores the default.
func (g *Graph) SetProtocol(src, dst, protocol string) {
	g.AddEdge(src, dst)
	if g.proto == nil {
		g.proto = make(map[Edge]string)
	}
	key := Edge{Src: src, Dst: dst}
	if protocol == "" || protocol == ProtocolHTTP {
		delete(g.proto, key)
		return
	}
	g.proto[key] = protocol
}

// Protocol reports the protocol of the src→dst edge; ProtocolHTTP for
// unmarked (or unknown) edges.
func (g *Graph) Protocol(src, dst string) string {
	if p, ok := g.proto[Edge{Src: src, Dst: dst}]; ok {
		return p
	}
	return ProtocolHTTP
}

// TCPEdges returns the edges marked ProtocolTCP, sorted by (src, dst) —
// the edges the campaign enumerator targets with stream-fault grids.
func (g *Graph) TCPEdges() []Edge {
	var edges []Edge
	for e, p := range g.proto {
		if p == ProtocolTCP && g.HasEdge(e.Src, e.Dst) {
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	return edges
}

// Has reports whether the named service is a vertex of the graph.
func (g *Graph) Has(name string) bool {
	_, ok := g.out[name]
	return ok
}

// HasEdge reports whether src calls dst.
func (g *Graph) HasEdge(src, dst string) bool {
	return g.out[src][dst]
}

// Services returns all service names, sorted.
func (g *Graph) Services() []string {
	names := make([]string, 0, len(g.out))
	for n := range g.out {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of services.
func (g *Graph) Len() int { return len(g.out) }

// Dependents returns the services that call the named service (its
// upstreams), sorted. This is the paper's dependents() helper used by Crash,
// Hang, Overload and FakeSuccess recipes.
func (g *Graph) Dependents(name string) ([]string, error) {
	if !g.Has(name) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	return setToSorted(g.in[name]), nil
}

// Dependencies returns the services the named service calls (its
// downstreams), sorted.
func (g *Graph) Dependencies(name string) ([]string, error) {
	if !g.Has(name) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	return setToSorted(g.out[name]), nil
}

// Edges returns all edges sorted by (src, dst).
func (g *Graph) Edges() []Edge {
	var edges []Edge
	for src, dsts := range g.out {
		for dst := range dsts {
			edges = append(edges, Edge{Src: src, Dst: dst})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	return edges
}

// Cut returns the edges crossing from partition A to partition B and from B
// to A — the edge set a network-partition recipe must abort (paper §5: "a
// network partition is implemented using a series of Abort operations ...
// along the cut of an application graph"). Services named in a or b that
// are not in the graph produce an error; services in neither set are left
// untouched.
func (g *Graph) Cut(a, b []string) ([]Edge, error) {
	inA := make(map[string]bool, len(a))
	inB := make(map[string]bool, len(b))
	for _, s := range a {
		if !g.Has(s) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownService, s)
		}
		inA[s] = true
	}
	for _, s := range b {
		if !g.Has(s) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownService, s)
		}
		if inA[s] {
			return nil, fmt.Errorf("graph: service %q appears on both sides of the partition", s)
		}
		inB[s] = true
	}
	var cut []Edge
	for _, e := range g.Edges() {
		if (inA[e.Src] && inB[e.Dst]) || (inB[e.Src] && inA[e.Dst]) {
			cut = append(cut, e)
		}
	}
	return cut, nil
}

// Roots returns services with no dependents (entry points), sorted.
func (g *Graph) Roots() []string {
	var roots []string
	for name := range g.out {
		if len(g.in[name]) == 0 {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	return roots
}

// Leaves returns services with no dependencies, sorted.
func (g *Graph) Leaves() []string {
	var leaves []string
	for name, dsts := range g.out {
		if len(dsts) == 0 {
			leaves = append(leaves, name)
		}
	}
	sort.Strings(leaves)
	return leaves
}

// HasCycle reports whether the call graph contains a dependency cycle.
// Cycles are legal in microservice deployments but usually indicate a
// mis-specified logical graph, so recipes warn about them.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(g.out))
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = grey
		for next := range g.out[n] {
			switch color[next] {
			case grey:
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range g.out {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// Downstream returns every service transitively reachable from name
// (excluding name itself), sorted. Used by recipes that reason about blast
// radius.
func (g *Graph) Downstream(name string) ([]string, error) {
	if !g.Has(name) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	seen := make(map[string]bool)
	stack := []string{name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.out[n] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	delete(seen, name)
	return setToSorted(seen), nil
}

// Upstream returns every service that transitively depends on name
// (excluding name itself), sorted.
func (g *Graph) Upstream(name string) ([]string, error) {
	if !g.Has(name) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	seen := make(map[string]bool)
	stack := []string{name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for prev := range g.in[n] {
			if !seen[prev] {
				seen[prev] = true
				stack = append(stack, prev)
			}
		}
	}
	delete(seen, name)
	return setToSorted(seen), nil
}

// DOT renders the graph in Graphviz DOT format for documentation and
// debugging.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph app {\n")
	for _, s := range g.Services() {
		fmt.Fprintf(&b, "  %q;\n", s)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.Src, e.Dst)
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of the graph, edge protocols included.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, s := range g.Services() {
		c.AddService(s)
	}
	for _, e := range g.Edges() {
		c.AddEdge(e.Src, e.Dst)
	}
	for e, p := range g.proto {
		if g.HasEdge(e.Src, e.Dst) {
			c.SetProtocol(e.Src, e.Dst, p)
		}
	}
	return c
}

func setToSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
