package tracing

import (
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

// TestAssembleBreaksTimestampTiesBySeq feeds assembly two sibling hops
// with identical millisecond timestamps in both presentation orders: the
// resulting sibling order (and therefore any execution index derived
// from the tree) must follow the store sequence number, not arrival
// order.
func TestAssembleBreaksTimestampTiesBySeq(t *testing.T) {
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	root := eventlog.Record{Seq: 1, Timestamp: ts, RequestID: "test-1",
		SpanID: "sp-root", Src: "user", Dst: "a", Kind: eventlog.KindRequest}
	childX := eventlog.Record{Seq: 2, Timestamp: ts, RequestID: "test-1",
		SpanID: "sp-x", ParentSpanID: "sp-root", Src: "a", Dst: "b", Kind: eventlog.KindRequest}
	childY := eventlog.Record{Seq: 3, Timestamp: ts, RequestID: "test-1",
		SpanID: "sp-y", ParentSpanID: "sp-root", Src: "a", Dst: "c", Kind: eventlog.KindRequest}

	for _, recs := range [][]eventlog.Record{
		{root, childX, childY},
		{childY, childX, root}, // reversed arrival, e.g. a shard-merge race
	} {
		traces := Assemble(recs)
		if len(traces) != 1 {
			t.Fatalf("traces = %d, want 1", len(traces))
		}
		tr := traces[0]
		if len(tr.Spans) != 3 || tr.Spans[0].ID != "sp-root" ||
			tr.Spans[1].ID != "sp-x" || tr.Spans[2].ID != "sp-y" {
			t.Fatalf("span order not seq-stable: %v", spanIDs(tr.Spans))
		}
		r := tr.Root()
		if len(r.Children) != 2 || r.Children[0].ID != "sp-x" || r.Children[1].ID != "sp-y" {
			t.Fatalf("child order not seq-stable: %v", spanIDs(r.Children))
		}
	}
}

// TestAssembleBreaksTraceTiesBySeq: two flows starting on the same
// millisecond must order by their first record's seq.
func TestAssembleBreaksTraceTiesBySeq(t *testing.T) {
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r1 := eventlog.Record{Seq: 10, Timestamp: ts, RequestID: "test-1",
		SpanID: "sp-1", Src: "user", Dst: "a", Kind: eventlog.KindRequest}
	r2 := eventlog.Record{Seq: 20, Timestamp: ts, RequestID: "test-2",
		SpanID: "sp-2", Src: "user", Dst: "a", Kind: eventlog.KindRequest}
	for _, recs := range [][]eventlog.Record{{r1, r2}, {r2, r1}} {
		traces := Assemble(recs)
		if len(traces) != 2 || traces[0].RequestID != "test-1" || traces[1].RequestID != "test-2" {
			ids := []string{}
			for _, tr := range traces {
				ids = append(ids, tr.RequestID)
			}
			t.Fatalf("trace order not seq-stable: %v", ids)
		}
	}
}

// TestSpanCarriesEI: the execution index on a request record surfaces on
// its span, where the explore plane's point inventory reads it.
func TestSpanCarriesEI(t *testing.T) {
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	recs := []eventlog.Record{
		{Seq: 1, Timestamp: ts, RequestID: "test-1", SpanID: "sp-1",
			EI: "a#0", Src: "user", Dst: "a", Kind: eventlog.KindRequest},
		{Seq: 2, Timestamp: ts.Add(time.Millisecond), RequestID: "test-1", SpanID: "sp-1",
			EI: "a#0", Src: "user", Dst: "a", Kind: eventlog.KindReply, Status: 200},
	}
	traces := Assemble(recs)
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("unexpected assembly: %+v", traces)
	}
	if s := traces[0].Spans[0]; s.EI != "a#0" || s.Seq != 1 {
		t.Fatalf("span EI/Seq = %q/%d, want a#0/1", s.EI, s.Seq)
	}
}

func spanIDs(ss []*Span) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.ID
	}
	return out
}
