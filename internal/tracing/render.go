package tracing

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// waterfallWidth is the character width of the bar column.
const waterfallWidth = 32

// Waterfall renders the trace as an ASCII waterfall: one line per span in
// tree order, with a bar showing the hop's interval relative to the whole
// trace and annotations for status, latency, and fired faults.
func Waterfall(t *Trace) string {
	var b strings.Builder
	dur := t.Duration()
	fmt.Fprintf(&b, "trace %s  (%d spans, %s", t.RequestID, len(t.Spans), fmtDur(dur))
	if t.Legacy {
		b.WriteString(", legacy")
	}
	if t.Failed() {
		b.WriteString(", FAILED")
	}
	b.WriteString(")\n")

	// Column width for the left label so the bars align.
	labelW := 0
	for _, s := range t.Spans {
		if w := len(s.Src) + len(s.Dst) + 4; w > labelW {
			labelW = w
		}
	}
	labelW += 2 * maxDepth(t)

	for _, root := range t.Roots {
		root.Walk(func(s *Span) {
			depth := spanDepthIn(t, s)
			label := strings.Repeat("  ", depth) + s.Src + " -> " + s.Dst
			fmt.Fprintf(&b, "%-*s |%s| %7s", labelW, label, bar(t, s, dur), fmtDur(s.Latency))
			switch {
			case s.Severed:
				b.WriteString("  SEVERED")
			case s.Incomplete:
				b.WriteString("  (no reply)")
			default:
				fmt.Fprintf(&b, "  %d", s.Status)
			}
			if s.FaultRuleID != "" {
				fmt.Fprintf(&b, "  [%s %s", s.FaultAction, s.FaultRuleID)
				if s.Injected > 0 {
					fmt.Fprintf(&b, " +%s", fmtDur(s.Injected))
				}
				b.WriteString("]")
			}
			b.WriteString("\n")
		})
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(&b, "orphan reply %s -> %s status %d (request record missing)\n", o.Src, o.Dst, o.Status)
	}
	if len(t.DuplicateSpanIDs) > 0 {
		fmt.Fprintf(&b, "duplicate span IDs: %s\n", strings.Join(t.DuplicateSpanIDs, ", "))
	}
	return b.String()
}

// RenderCriticalPath renders the critical path with the injected/service
// latency split and, when a fault fired on the flow, the attribution line.
func RenderCriticalPath(t *Trace) string {
	cp := t.CriticalPath()
	if len(cp.Steps) == 0 {
		return "critical path: (empty trace)\n"
	}
	var b strings.Builder
	b.WriteString("critical path: ")
	for i, st := range cp.Steps {
		if i == 0 {
			b.WriteString(st.Span.Src)
		}
		b.WriteString(" -> " + st.Span.Dst)
	}
	fmt.Fprintf(&b, "\n  total %s = injected %s + service %s\n",
		fmtDur(cp.Total), fmtDur(cp.Injected), fmtDur(cp.Service))
	for _, st := range cp.Steps {
		fmt.Fprintf(&b, "  %s -> %s: %s (self %s", st.Span.Src, st.Span.Dst,
			fmtDur(st.Span.Latency), fmtDur(st.Self))
		if st.Span.Injected > 0 {
			fmt.Fprintf(&b, ", injected %s by %s", fmtDur(st.Span.Injected), st.Span.FaultRuleID)
		}
		b.WriteString(")\n")
	}
	if a, ok := t.Attribute(); ok {
		fmt.Fprintf(&b, "attribution: rule %s on %s -> %s (depth %d), +%s injected on path",
			a.RuleID, a.Span.Src, a.Span.Dst, len(a.Path)-1, fmtDur(a.Injected))
		if a.RootFailed {
			b.WriteString(", surfaced as edge failure")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// JSON marshals traces as indented JSON for machine consumption.
func JSON(traces []*Trace) ([]byte, error) {
	return json.MarshalIndent(traces, "", "  ")
}

// DOT renders traces as a Graphviz digraph: one node per span, edges
// parent→child, faulted spans highlighted. Multiple traces land in one
// graph, clustered by request ID.
func DOT(traces []*Trace) string {
	var b strings.Builder
	b.WriteString("digraph traces {\n  rankdir=LR;\n  node [shape=box];\n")
	for ti, t := range traces {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", ti, t.RequestID)
		for si, s := range t.Spans {
			attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s->%s\n%s %d", s.Src, s.Dst, fmtDur(s.Latency), s.Status))
			if s.FaultRuleID != "" {
				attrs += fmt.Sprintf(", style=filled, fillcolor=orange, tooltip=%q", s.FaultRuleID)
			}
			if s.Failed() {
				attrs += ", color=red"
			}
			fmt.Fprintf(&b, "    t%d_s%d [%s];\n", ti, si, attrs)
		}
		for si, s := range t.Spans {
			for _, c := range s.Children {
				fmt.Fprintf(&b, "    t%d_s%d -> t%d_s%d;\n", ti, si, ti, indexOf(t, c))
			}
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func indexOf(t *Trace, target *Span) int {
	for i, s := range t.Spans {
		if s == target {
			return i
		}
	}
	return -1
}

// bar renders a span's interval as a fixed-width gantt segment.
func bar(t *Trace, s *Span, total time.Duration) string {
	cells := make([]byte, waterfallWidth)
	for i := range cells {
		cells[i] = ' '
	}
	if total > 0 {
		start := int(float64(s.Start.Sub(t.Start())) / float64(total) * waterfallWidth)
		end := int(float64(s.End.Sub(t.Start())) / float64(total) * waterfallWidth)
		if start < 0 {
			start = 0
		}
		if end >= waterfallWidth {
			end = waterfallWidth - 1
		}
		for i := start; i <= end && i >= 0; i++ {
			cells[i] = '#'
		}
	} else if len(t.Spans) > 0 {
		cells[0] = '#'
	}
	return string(cells)
}

func maxDepth(t *Trace) int {
	max := 0
	for _, r := range t.Roots {
		if d := r.Depth(); d > max {
			max = d
		}
	}
	return max
}

// spanDepthIn returns s's depth below its root (root = 0).
func spanDepthIn(t *Trace, target *Span) int {
	depth := -1
	for _, r := range t.Roots {
		var walk func(s *Span, d int) bool
		walk = func(s *Span, d int) bool {
			if s == target {
				depth = d
				return true
			}
			for _, c := range s.Children {
				if walk(c, d+1) {
					return true
				}
			}
			return false
		}
		if walk(r, 0) {
			break
		}
	}
	if depth < 0 {
		return 0
	}
	return depth
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d == 0:
		return "0ms"
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
}
