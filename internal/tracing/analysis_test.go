package tracing

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
)

// delayedChain builds a->b->c where the b->c hop took a 100ms injected
// delay from rule r-delay.
func delayedChain(reqID string) []eventlog.Record {
	recs := hop(reqID, "sp-a-1", "", "a", "b", t0, 130*time.Millisecond, 200)
	inner := hop(reqID, "sp-b-1", "sp-a-1", "b", "c", t0.Add(10*time.Millisecond), 110*time.Millisecond, 200)
	inner[1].FaultAction = "delay"
	inner[1].FaultRuleID = "r-delay"
	inner[1].InjectedDelayMillis = 100
	return append(recs, inner...)
}

func TestCriticalPath(t *testing.T) {
	tr := Assemble(delayedChain("test-cp"))[0]
	cp := tr.CriticalPath()
	if len(cp.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(cp.Steps))
	}
	if !cp.Contains("a", "b") || !cp.Contains("b", "c") {
		t.Fatal("critical path missing an edge")
	}
	if cp.Contains("b", "x") {
		t.Fatal("Contains matched an absent edge")
	}
	if cp.Total != 130*time.Millisecond {
		t.Fatalf("total = %s", cp.Total)
	}
	if cp.Injected != 100*time.Millisecond {
		t.Fatalf("injected = %s", cp.Injected)
	}
	if cp.Service != 30*time.Millisecond {
		t.Fatalf("service = %s", cp.Service)
	}
	// Root's self time excludes the inner hop's latency.
	if cp.Steps[0].Self != 20*time.Millisecond {
		t.Fatalf("root self = %s, want 20ms", cp.Steps[0].Self)
	}
	if cp.Steps[1].Self != 110*time.Millisecond {
		t.Fatalf("leaf self = %s, want 110ms", cp.Steps[1].Self)
	}
}

func TestCriticalPathPicksSlowestBranch(t *testing.T) {
	recs := hop("test-fan", "sp-r", "", "a", "b", t0, 100*time.Millisecond, 200)
	recs = append(recs, hop("test-fan", "sp-f1", "sp-r", "b", "fast", t0.Add(5*time.Millisecond), 10*time.Millisecond, 200)...)
	recs = append(recs, hop("test-fan", "sp-s1", "sp-r", "b", "slow", t0.Add(5*time.Millisecond), 80*time.Millisecond, 200)...)
	cp := Assemble(recs)[0].CriticalPath()
	if !cp.Contains("b", "slow") || cp.Contains("b", "fast") {
		t.Fatalf("critical path chose wrong branch: %+v", cp.Steps)
	}
}

func TestAttribute(t *testing.T) {
	tr := Assemble(delayedChain("test-attr"))[0]
	a, ok := tr.Attribute()
	if !ok {
		t.Fatal("no attribution found")
	}
	if a.RuleID != "r-delay" {
		t.Fatalf("rule = %q", a.RuleID)
	}
	if a.Span.Src != "b" || a.Span.Dst != "c" {
		t.Fatalf("span = %+v", a.Span)
	}
	if len(a.Path) != 2 || a.Path[0].Src != "a" {
		t.Fatalf("path = %+v", a.Path)
	}
	if a.Injected != 100*time.Millisecond {
		t.Fatalf("injected = %s", a.Injected)
	}
	if a.RootFailed {
		t.Fatal("healthy trace marked RootFailed")
	}
}

func TestAttributeDeepestWins(t *testing.T) {
	recs := delayedChain("test-deep")
	// A shallower fault on the root hop: attribution must still name the
	// deeper one.
	recs[1].FaultAction = "delay"
	recs[1].FaultRuleID = "r-shallow"
	recs[1].InjectedDelayMillis = 5
	a, ok := Assemble(recs)[0].Attribute()
	if !ok || a.RuleID != "r-delay" {
		t.Fatalf("attribution = %+v ok=%v, want deepest rule r-delay", a, ok)
	}
	// ...but its injected delay still counts on the path.
	if a.Injected != 105*time.Millisecond {
		t.Fatalf("injected = %s, want 105ms", a.Injected)
	}
}

func TestAttributeNoFault(t *testing.T) {
	if _, ok := Assemble(chain("test-clean"))[0].Attribute(); ok {
		t.Fatal("attribution on a fault-free trace")
	}
}

func TestBlastRadius(t *testing.T) {
	// Faulted flow: a->b->c with the c hop aborted; the failure propagates
	// so b also answers 500. Clean flow touches d — must not count.
	faulted := hop("test-blast-1", "sp-1", "", "a", "b", t0, 20*time.Millisecond, 500)
	inner := hop("test-blast-1", "sp-2", "sp-1", "b", "c", t0.Add(time.Millisecond), 10*time.Millisecond, 503)
	inner[1].GremlinGenerated = true
	inner[1].FaultAction = "abort"
	inner[1].FaultRuleID = "r-abort"
	clean := hop("test-blast-2", "sp-3", "", "a", "d", t0, 5*time.Millisecond, 200)

	blast := BlastRadius(Assemble(append(append(faulted, inner...), clean...)))
	if got := strings.Join(blast.Reached, ","); got != "b,c" {
		t.Fatalf("reached = %q, want b,c", got)
	}
	if got := strings.Join(blast.Failed, ","); got != "b,c" {
		t.Fatalf("failed = %q, want b,c", got)
	}
}

func TestBlastRadiusAbsorbedFault(t *testing.T) {
	// The fault fires deep but a fallback absorbs it: only c failed.
	root := hop("test-abs", "sp-1", "", "a", "b", t0, 20*time.Millisecond, 200)
	inner := hop("test-abs", "sp-2", "sp-1", "b", "c", t0.Add(time.Millisecond), 10*time.Millisecond, 503)
	inner[1].GremlinGenerated = true
	inner[1].FaultRuleID = "r-abort"
	blast := BlastRadius(Assemble(append(root, inner...)))
	if got := strings.Join(blast.Failed, ","); got != "c" {
		t.Fatalf("failed = %q, want c", got)
	}
	if got := strings.Join(blast.Reached, ","); got != "b,c" {
		t.Fatalf("reached = %q, want b,c", got)
	}
}

func TestObservedGraphAndDiff(t *testing.T) {
	traces := Assemble(chain("test-g"))
	og := ObservedGraph(traces)
	if !og.HasEdge("a", "b") || !og.HasEdge("b", "c") || !og.HasEdge("c", "d") {
		t.Fatalf("observed graph missing edges: %v", og.Edges())
	}

	declared := graph.New()
	declared.AddEdge("a", "b")
	declared.AddEdge("b", "c")
	declared.AddEdge("c", "d")
	if d := DiffGraph(declared, traces); !d.Clean() {
		t.Fatalf("diff of matching graphs = %+v", d)
	}

	declared2 := graph.New()
	declared2.AddEdge("a", "b")
	declared2.AddEdge("b", "c")
	declared2.AddEdge("b", "cache") // declared, never exercised
	d := DiffGraph(declared2, traces)
	if len(d.Unexercised) != 1 || d.Unexercised[0].Dst != "cache" {
		t.Fatalf("unexercised = %+v", d.Unexercised)
	}
	if len(d.Undeclared) != 1 || d.Undeclared[0] != (graph.Edge{Src: "c", Dst: "d"}) {
		t.Fatalf("undeclared = %+v", d.Undeclared)
	}
}

func TestHasBoundedRetriesPerTrace(t *testing.T) {
	// Flow 1 retries twice (3 calls), flow 2 once (2 calls). Budget of 2
	// retries passes; budget of 1 fails naming the worst flow.
	var recs []eventlog.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, hop("test-r1", spanN("x", i), "", "a", "b",
			t0.Add(time.Duration(i)*10*time.Millisecond), 5*time.Millisecond, 503)...)
	}
	for i := 0; i < 2; i++ {
		recs = append(recs, hop("test-r2", spanN("y", i), "", "a", "b",
			t0.Add(time.Duration(i)*10*time.Millisecond), 5*time.Millisecond, 503)...)
	}
	traces := Assemble(recs)

	if res := HasBoundedRetriesPerTrace(traces, "a", "b", 2); !res.Passed {
		t.Fatalf("budget 2 failed: %s", res.Details)
	}
	res := HasBoundedRetriesPerTrace(traces, "a", "b", 1)
	if res.Passed {
		t.Fatal("budget 1 passed")
	}
	if !strings.Contains(res.Details, "test-r1") {
		t.Fatalf("details should name the worst trace: %s", res.Details)
	}
	if res := HasBoundedRetriesPerTrace(traces, "a", "nope", 1); res.Passed {
		t.Fatal("unexercised edge passed")
	}
}

func TestHasCircuitBreakerPerTrace(t *testing.T) {
	mk := func(gapAfterTrip time.Duration) []*Trace {
		var recs []eventlog.Record
		at := t0
		for i := 0; i < 3; i++ { // three failures trip the breaker
			recs = append(recs, hop("test-cb", spanN("c", i), "", "a", "b", at, time.Millisecond, 503)...)
			at = at.Add(2 * time.Millisecond)
		}
		// One more call after the trip, gapAfterTrip past the 3rd failure's end.
		tripEnd := recs[len(recs)-1].Timestamp
		recs = append(recs, hop("test-cb", "sp-late", "", "a", "b", tripEnd.Add(gapAfterTrip), time.Millisecond, 200)...)
		return Assemble(recs)
	}
	if res := HasCircuitBreakerPerTrace(mk(50*time.Millisecond), "a", "b", 3, 20*time.Millisecond); !res.Passed {
		t.Fatalf("quiet flow failed: %s", res.Details)
	}
	if res := HasCircuitBreakerPerTrace(mk(5*time.Millisecond), "a", "b", 3, 20*time.Millisecond); res.Passed {
		t.Fatal("hammering flow passed")
	}
	if res := HasCircuitBreakerPerTrace(mk(50*time.Millisecond), "a", "b", 9, 20*time.Millisecond); res.Passed {
		t.Fatal("never-tripped breaker passed")
	}
	if res := HasCircuitBreakerPerTrace(nil, "a", "b", 3, 20*time.Millisecond); res.Passed {
		t.Fatal("no traces passed")
	}
}

func spanN(tag string, i int) string {
	return "sp-" + tag + "-" + string(rune('0'+i))
}
