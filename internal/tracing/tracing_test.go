package tracing

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

var t0 = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

// hop builds the request+reply record pair for one proxied hop.
func hop(reqID, spanID, parentID, src, dst string, start time.Time, latency time.Duration, status int) []eventlog.Record {
	return []eventlog.Record{
		{Timestamp: start, RequestID: reqID, SpanID: spanID, ParentSpanID: parentID,
			Src: src, Dst: dst, Kind: eventlog.KindRequest, Method: "GET", URI: "/x"},
		{Timestamp: start.Add(latency), RequestID: reqID, SpanID: spanID, ParentSpanID: parentID,
			Src: src, Dst: dst, Kind: eventlog.KindReply, Status: status,
			LatencyMillis: float64(latency) / float64(time.Millisecond)},
	}
}

// chain builds a three-hop sequential chain a->b->c->d for reqID.
func chain(reqID string) []eventlog.Record {
	var recs []eventlog.Record
	recs = append(recs, hop(reqID, "sp-a-1", "", "a", "b", t0, 100*time.Millisecond, 200)...)
	recs = append(recs, hop(reqID, "sp-b-1", "sp-a-1", "b", "c", t0.Add(10*time.Millisecond), 60*time.Millisecond, 200)...)
	recs = append(recs, hop(reqID, "sp-c-1", "sp-b-1", "c", "d", t0.Add(20*time.Millisecond), 30*time.Millisecond, 200)...)
	return recs
}

func TestAssembleChain(t *testing.T) {
	traces := Assemble(chain("test-1"))
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.RequestID != "test-1" || tr.Legacy {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Roots) != 1 || len(tr.Spans) != 3 {
		t.Fatalf("roots=%d spans=%d, want 1/3", len(tr.Roots), len(tr.Spans))
	}
	root := tr.Root()
	if root.Src != "a" || root.Dst != "b" || root.Status != 200 {
		t.Fatalf("root = %+v", root)
	}
	if root.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", root.Depth())
	}
	if len(root.Children) != 1 || root.Children[0].Dst != "c" {
		t.Fatalf("children = %+v", root.Children)
	}
	if got := tr.Duration(); got != 100*time.Millisecond {
		t.Fatalf("duration = %s", got)
	}
	if tr.Failed() {
		t.Fatal("healthy trace reported failed")
	}
}

func TestAssembleLegacyFallback(t *testing.T) {
	// Same chain with span fields stripped: assembly must recover the same
	// tree from timestamps alone.
	recs := chain("test-legacy")
	for i := range recs {
		recs[i].SpanID, recs[i].ParentSpanID = "", ""
	}
	traces := Assemble(recs)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[0]
	if !tr.Legacy {
		t.Fatal("fallback trace not marked Legacy")
	}
	if len(tr.Roots) != 1 || len(tr.Spans) != 3 {
		t.Fatalf("roots=%d spans=%d, want 1/3", len(tr.Roots), len(tr.Spans))
	}
	if tr.Root().Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Root().Depth())
	}
	if tr.Root().Children[0].Src != "b" || tr.Root().Children[0].Dst != "c" {
		t.Fatalf("nesting wrong: %+v", tr.Root().Children[0])
	}
}

func TestAssembleMixedLegacyAndSpanful(t *testing.T) {
	// One hop lost its span fields (mid-rollout agent); the others carry
	// them. The legacy hop still lands in the same trace.
	recs := chain("test-mixed")
	recs[4].SpanID, recs[4].ParentSpanID = "", "" // c->d request
	recs[5].SpanID, recs[5].ParentSpanID = "", "" // c->d reply
	tr := Assemble(recs)[0]
	if tr.Legacy {
		t.Fatal("mixed trace should not be marked Legacy")
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	// The legacy hop nests under b->c by timestamp containment.
	if tr.Root().Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Root().Depth())
	}
}

func TestAssembleOrphanReply(t *testing.T) {
	recs := chain("test-orphan")
	recs = append(recs, eventlog.Record{
		Timestamp: t0.Add(50 * time.Millisecond), RequestID: "test-orphan",
		SpanID: "sp-lost-9", Src: "b", Dst: "x", Kind: eventlog.KindReply, Status: 200,
	})
	tr := Assemble(recs)[0]
	if len(tr.Orphans) != 1 || tr.Orphans[0].SpanID != "sp-lost-9" {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("orphan reply should not create a span: %d", len(tr.Spans))
	}
}

func TestAssembleMissingRoot(t *testing.T) {
	// Drop the root hop's records: the b->c subtree must surface as a root
	// rather than vanish.
	recs := chain("test-noroot")[2:]
	tr := Assemble(recs)[0]
	if len(tr.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Roots))
	}
	if tr.Root().Src != "b" || tr.Root().ParentID != "sp-a-1" {
		t.Fatalf("promoted root = %+v", tr.Root())
	}
	if tr.Root().Depth() != 2 {
		t.Fatalf("depth = %d, want 2", tr.Root().Depth())
	}
}

func TestAssembleIncompleteSpan(t *testing.T) {
	// Request without reply: still in flight when observation stopped.
	recs := chain("test-inflight")[:5] // drop c->d reply
	tr := Assemble(recs)[0]
	var leaf *Span
	for _, s := range tr.Spans {
		if s.Dst == "d" {
			leaf = s
		}
	}
	if leaf == nil || !leaf.Incomplete {
		t.Fatalf("leaf = %+v, want Incomplete", leaf)
	}
}

func TestAssembleSeveredReply(t *testing.T) {
	recs := hop("test-sev", "sp-1", "", "a", "b", t0, 5*time.Millisecond, 0)
	recs[1].GremlinGenerated = true
	recs[1].FaultAction = "abort"
	recs[1].FaultRuleID = "r-sever"
	tr := Assemble(recs)[0]
	s := tr.Root()
	if !s.Severed || !s.Synthesized || s.FaultRuleID != "r-sever" {
		t.Fatalf("span = %+v", s)
	}
	if !tr.Failed() {
		t.Fatal("severed root should fail the trace")
	}
}

func TestAssembleDuplicateSpanIDs(t *testing.T) {
	recs := chain("test-dup")
	// A second request record reusing sp-b-1.
	recs = append(recs, eventlog.Record{
		Timestamp: t0.Add(40 * time.Millisecond), RequestID: "test-dup",
		SpanID: "sp-b-1", ParentSpanID: "sp-a-1",
		Src: "b", Dst: "e", Kind: eventlog.KindRequest,
	})
	tr := Assemble(recs)[0]
	if len(tr.DuplicateSpanIDs) != 1 || tr.DuplicateSpanIDs[0] != "sp-b-1" {
		t.Fatalf("duplicates = %v", tr.DuplicateSpanIDs)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("spans = %d, want 4 (duplicate kept as its own span)", len(tr.Spans))
	}
}

func TestAssembleParentCycleTerminates(t *testing.T) {
	// Malformed: two spans name each other as parents. Assembly must not
	// loop and must expose the component via a root.
	var recs []eventlog.Record
	recs = append(recs, hop("test-cycle", "sp-x", "sp-y", "a", "b", t0, time.Millisecond, 200)...)
	recs = append(recs, hop("test-cycle", "sp-y", "sp-x", "b", "a", t0.Add(time.Millisecond), time.Millisecond, 200)...)
	tr := Assemble(recs)[0]
	if len(tr.Roots) == 0 {
		t.Fatal("cyclic component produced no root")
	}
	n := 0
	for _, r := range tr.Roots {
		r.Walk(func(*Span) { n++ })
	}
	if n != 2 {
		t.Fatalf("walk visited %d spans, want 2", n)
	}
}

func TestAssembleCampaignNamespacesNeverMerge(t *testing.T) {
	// Two concurrent campaign runs interleave records in the store; their
	// camp-<runID>-* namespaces must assemble into distinct traces.
	r1 := chain("camp-1-aaaaaa-1")
	r2 := chain("camp-2-aaaaaa-1")
	var interleaved []eventlog.Record
	for i := range r1 {
		interleaved = append(interleaved, r1[i], r2[i])
	}
	// Plus records with no request ID at all: never part of any trace.
	interleaved = append(interleaved, eventlog.Record{
		Timestamp: t0, Src: "a", Dst: "b", Kind: eventlog.KindRequest, SpanID: "sp-bg-1",
	})
	traces := Assemble(interleaved)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) != 3 {
			t.Fatalf("trace %s has %d spans, want 3", tr.RequestID, len(tr.Spans))
		}
		for _, s := range tr.Spans {
			if !strings.HasPrefix(tr.RequestID, "camp-1-") && !strings.HasPrefix(tr.RequestID, "camp-2-") {
				t.Fatalf("unexpected trace %q", tr.RequestID)
			}
			_ = s
		}
	}
}

func TestFromSource(t *testing.T) {
	store := eventlog.NewStore()
	if err := store.Log(chain("test-src")...); err != nil {
		t.Fatal(err)
	}
	traces, err := FromSource(store, eventlog.Query{IDPattern: "test-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || len(traces[0].Spans) != 3 {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestRoundTripThroughJSONL(t *testing.T) {
	// Spanful and legacy records survive a JSONL save/load cycle and
	// assemble identically — the backward-compatibility contract.
	store := eventlog.NewStore()
	legacy := chain("test-old")
	for i := range legacy {
		legacy[i].SpanID, legacy[i].ParentSpanID = "", ""
	}
	if err := store.Log(append(chain("test-new"), legacy...)...); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := store.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"spanId":"sp-a-1"`) {
		t.Fatal("span fields not persisted")
	}
	reloaded := eventlog.NewStore()
	if _, err := reloaded.ReadJSONL(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	traces, err := FromSource(reloaded, eventlog.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) != 3 || tr.Root().Depth() != 3 {
			t.Fatalf("trace %s: spans=%d depth=%d", tr.RequestID, len(tr.Spans), tr.Root().Depth())
		}
		if tr.RequestID == "test-old" && !tr.Legacy {
			t.Fatal("reloaded legacy trace not marked Legacy")
		}
	}
}
