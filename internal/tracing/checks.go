package tracing

import (
	"fmt"
	"time"

	"gremlin/internal/checker"
)

// Per-trace pattern checks: the §5 checks evaluated per causal tree
// instead of per (src, dst) edge. The edge-level checks in
// internal/checker pool every call on an edge, so two concurrent flows
// each retrying N times look like one flow retrying 2N times; here each
// flow is judged against its own budget, which is both stricter and fairer
// under concurrent load.

// HasBoundedRetriesPerTrace checks that no single request flow carries
// more than 1+maxTries attempts on the src→dst edge: the original call
// plus at most maxTries retries. Traces with no src→dst hop are skipped;
// if no trace exercises the edge the check fails for lack of evidence,
// matching the edge-level check's behaviour.
func HasBoundedRetriesPerTrace(traces []*Trace, src, dst string, maxTries int) checker.Result {
	name := fmt.Sprintf("HasBoundedRetriesPerTrace(%s, %s, %d)", src, dst, maxTries)
	budget := 1 + maxTries
	var (
		exercised int
		worst     *Trace
		worstN    int
	)
	for _, t := range traces {
		n := countEdge(t, src, dst)
		if n == 0 {
			continue
		}
		exercised++
		if n > worstN {
			worstN, worst = n, t
		}
	}
	if exercised == 0 {
		return checker.Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no trace exercises %s->%s", src, dst)}
	}
	if worstN > budget {
		return checker.Result{Check: name, Passed: false,
			Details: fmt.Sprintf("trace %s made %d calls on %s->%s (budget %d = 1 + %d retries)",
				worst.RequestID, worstN, src, dst, budget, maxTries)}
	}
	return checker.Result{Check: name, Passed: true,
		Details: fmt.Sprintf("%d traces exercise %s->%s, worst makes %d calls (budget %d)",
			exercised, src, dst, worstN, budget)}
}

// HasCircuitBreakerPerTrace checks that within each flow, once threshold
// src→dst attempts have failed, the flow stops retrying the edge for at
// least tdelta — no further src→dst hop starts inside the window. A flow
// that keeps hammering a failed dependency past the threshold is a
// per-request retry storm even if a global breaker would eventually trip.
func HasCircuitBreakerPerTrace(traces []*Trace, src, dst string, threshold int, tdelta time.Duration) checker.Result {
	name := fmt.Sprintf("HasCircuitBreakerPerTrace(%s, %s, %d, %s)", src, dst, threshold, tdelta)
	var exercised, tripped int
	for _, t := range traces {
		var (
			failures int
			tripAt   time.Time
		)
		hit := false
		for _, s := range t.Spans { // start order
			if s.Src != src || s.Dst != dst {
				continue
			}
			hit = true
			if failures >= threshold && s.Start.Before(tripAt.Add(tdelta)) {
				return checker.Result{Check: name, Passed: false,
					Details: fmt.Sprintf("trace %s sent a call on %s->%s %s after its %d-th failure (quiet window %s)",
						t.RequestID, src, dst,
						s.Start.Sub(tripAt).Round(time.Millisecond), threshold, tdelta)}
			}
			if s.Failed() {
				failures++
				if failures == threshold {
					tripAt = s.End
					tripped++
				}
			}
		}
		if hit {
			exercised++
		}
	}
	if exercised == 0 {
		return checker.Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no trace exercises %s->%s", src, dst)}
	}
	if tripped == 0 {
		return checker.Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no trace reached %d failures on %s->%s; breaker never exercised",
				threshold, src, dst)}
	}
	return checker.Result{Check: name, Passed: true,
		Details: fmt.Sprintf("%d of %d traces tripped the %d-failure threshold on %s->%s and stayed quiet for %s",
			tripped, exercised, threshold, src, dst, tdelta)}
}

func countEdge(t *Trace, src, dst string) int {
	n := 0
	for _, s := range t.Spans {
		if s.Src == src && s.Dst == dst {
			n++
		}
	}
	return n
}
