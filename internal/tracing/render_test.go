package tracing

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWaterfall(t *testing.T) {
	tr := Assemble(delayedChain("test-wf"))[0]
	out := Waterfall(tr)
	for _, want := range []string{
		"trace test-wf",
		"a -> b",
		"b -> c",
		"[delay r-delay +100.0ms]",
		"#",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The inner hop is indented below the root.
	lines := strings.Split(out, "\n")
	var rootLine, innerLine string
	for _, l := range lines {
		if strings.Contains(l, "a -> b") {
			rootLine = l
		}
		if strings.Contains(l, "b -> c") {
			innerLine = l
		}
	}
	if !strings.HasPrefix(innerLine, "  ") || strings.HasPrefix(rootLine, " ") {
		t.Fatalf("indentation wrong:\n%s", out)
	}
}

func TestWaterfallAnnotations(t *testing.T) {
	recs := hop("test-ann", "sp-1", "", "a", "b", t0, 0, 0)
	recs[1].GremlinGenerated = true
	tr := Assemble(recs)[0]
	tr.Spans[0].Severed = true
	if out := Waterfall(tr); !strings.Contains(out, "SEVERED") {
		t.Fatalf("missing SEVERED:\n%s", out)
	}

	incomplete := Assemble(hop("test-inc", "sp-2", "", "a", "b", t0, 0, 0)[:1])[0]
	if out := Waterfall(incomplete); !strings.Contains(out, "(no reply)") {
		t.Fatalf("missing (no reply):\n%s", out)
	}
}

func TestRenderCriticalPath(t *testing.T) {
	tr := Assemble(delayedChain("test-rcp"))[0]
	out := RenderCriticalPath(tr)
	for _, want := range []string{
		"critical path: a -> b -> c",
		"injected 100.0ms",
		"service 30.0ms",
		"attribution: rule r-delay on b -> c",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	traces := Assemble(delayedChain("test-json"))
	data, err := JSON(traces)
	if err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0]["requestId"] != "test-json" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestDOTExport(t *testing.T) {
	out := DOT(Assemble(delayedChain("test-dot")))
	for _, want := range []string{
		"digraph traces",
		`label="test-dot"`,
		"t0_s0 -> t0_s1",
		"fillcolor=orange",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
