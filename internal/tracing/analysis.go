package tracing

import (
	"sort"
	"time"

	"gremlin/internal/graph"
)

// PathStep is one hop on a trace's critical path.
type PathStep struct {
	Span *Span `json:"span"`

	// Self is the part of this hop's latency not explained by its critical
	// child: time spent in Dst itself (plus network), rather than waiting
	// on a deeper dependency.
	Self time.Duration `json:"self"`
}

// CriticalPath is the chain of hops that bounds a trace's end-to-end
// latency: from the root, each step descends into the child whose reply
// arrived last — the dependency the caller was still waiting on when it
// finally answered.
type CriticalPath struct {
	Steps []PathStep `json:"steps"`

	// Total is the root hop's observed latency.
	Total time.Duration `json:"total"`

	// Injected is the Gremlin-injected delay summed along the path;
	// Service is the remainder — what the request would roughly have cost
	// without the staged faults.
	Injected time.Duration `json:"injected"`
	Service  time.Duration `json:"service"`
}

// Contains reports whether the edge src→dst lies on the critical path.
func (cp CriticalPath) Contains(src, dst string) bool {
	for _, st := range cp.Steps {
		if st.Span.Src == src && st.Span.Dst == dst {
			return true
		}
	}
	return false
}

// CriticalPath extracts the latency-bounding chain from the trace's
// primary root. An empty trace yields a zero path.
func (t *Trace) CriticalPath() CriticalPath {
	root := t.Root()
	if root == nil {
		return CriticalPath{}
	}
	var cp CriticalPath
	cp.Total = root.Latency
	for s := root; s != nil; {
		// The critical child is the one whose reply arrived last: until it
		// answered, s could not answer either.
		var crit *Span
		for _, c := range s.Children {
			if crit == nil || c.End.After(crit.End) {
				crit = c
			}
		}
		self := s.Latency
		if crit != nil {
			self -= crit.Latency
			if self < 0 {
				self = 0
			}
		}
		cp.Steps = append(cp.Steps, PathStep{Span: s, Self: self})
		cp.Injected += s.Injected
		s = crit
	}
	cp.Service = cp.Total - cp.Injected
	if cp.Service < 0 {
		cp.Service = 0
	}
	return cp
}

// Attribution explains a trace's outcome in terms of the injected fault
// that caused it: the deepest hop where a Gremlin rule fired, and the call
// path that propagated its effect to the application edge.
type Attribution struct {
	// RuleID is the fault rule that fired on the attributed hop
	// (comma-joined if several fired on that hop).
	RuleID string `json:"ruleId"`

	// Span is the deepest faulted hop; Path is the chain from the trace
	// root down to it.
	Span *Span   `json:"span"`
	Path []*Span `json:"path"`

	// Injected is the Gremlin-injected delay summed over Path — the
	// latency inflation attributable to the staged faults on this flow.
	Injected time.Duration `json:"injected"`

	// RootFailed reports whether the fault's effect surfaced as a failure
	// at the application edge (as opposed to being absorbed by a
	// resilience pattern on the way up).
	RootFailed bool `json:"rootFailed"`
}

// Attribute walks the trace for the deepest hop where a fault rule fired
// and returns the attribution, or ok=false when no rule fired anywhere in
// the trace (nothing to attribute). Ties at equal depth go to the
// earliest-starting hop.
func (t *Trace) Attribute() (Attribution, bool) {
	var (
		best      *Span
		bestDepth = -1
		bestPath  []*Span
	)
	for _, root := range t.Roots {
		var walk func(s *Span, depth int, path []*Span)
		walk = func(s *Span, depth int, path []*Span) {
			path = append(path, s)
			if s.FaultRuleID != "" && depth > bestDepth {
				best = s
				bestDepth = depth
				bestPath = append([]*Span(nil), path...)
			}
			for _, c := range s.Children {
				walk(c, depth+1, path)
			}
		}
		walk(root, 0, nil)
	}
	if best == nil {
		return Attribution{}, false
	}
	a := Attribution{
		RuleID:     best.FaultRuleID,
		Span:       best,
		Path:       bestPath,
		RootFailed: t.Failed(),
	}
	for _, s := range bestPath {
		a.Injected += s.Injected
	}
	return a, true
}

// Blast is the per-fault impact summary a campaign scorecard reports: how
// far a staged fault's effect spread through the application.
type Blast struct {
	// Reached are the services that handled traffic in flows where a fault
	// fired — the fault's potential audience.
	Reached []string `json:"reached"`

	// Failed are the services that delivered a failure (5xx or severed) to
	// their caller in those flows — the fault's actual blast radius.
	Failed []string `json:"failed"`
}

// BlastRadius computes the blast summary over a set of traces. Traces in
// which no rule fired contribute nothing: impact is only counted where a
// fault was actually staged on the flow.
func BlastRadius(traces []*Trace) Blast {
	reached := make(map[string]bool)
	failed := make(map[string]bool)
	for _, t := range traces {
		if _, ok := t.Attribute(); !ok {
			continue
		}
		for _, s := range t.Spans {
			reached[s.Dst] = true
			if s.Failed() {
				failed[s.Dst] = true
			}
		}
	}
	return Blast{Reached: sortedKeys(reached), Failed: sortedKeys(failed)}
}

// ObservedGraph extracts the dependency graph actually exercised by the
// traces: one edge per observed (Src, Dst) hop.
func ObservedGraph(traces []*Trace) *graph.Graph {
	g := graph.New()
	for _, t := range traces {
		for _, s := range t.Spans {
			g.AddEdge(s.Src, s.Dst)
		}
	}
	return g
}

// GraphDiff is the difference between the operator-declared application
// graph and the dependencies actually observed in traces.
type GraphDiff struct {
	// Unexercised edges are declared but never observed — the test did not
	// cover them (or the declared graph is stale).
	Unexercised []graph.Edge `json:"unexercised,omitempty"`

	// Undeclared edges were observed but not declared — the real
	// application calls a dependency the operator's graph does not know
	// about, so recipes computed from that graph miss it.
	Undeclared []graph.Edge `json:"undeclared,omitempty"`
}

// Clean reports whether declared and observed graphs agree.
func (d GraphDiff) Clean() bool {
	return len(d.Unexercised) == 0 && len(d.Undeclared) == 0
}

// DiffGraph compares the declared application graph against the
// dependencies observed in the traces.
func DiffGraph(declared *graph.Graph, traces []*Trace) GraphDiff {
	observed := ObservedGraph(traces)
	var d GraphDiff
	for _, e := range declared.Edges() {
		if !observed.HasEdge(e.Src, e.Dst) {
			d.Unexercised = append(d.Unexercised, e)
		}
	}
	for _, e := range observed.Edges() {
		if !declared.HasEdge(e.Src, e.Dst) {
			d.Undeclared = append(d.Undeclared, e)
		}
	}
	return d
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
