package resilience

import (
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is an injectable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestBreaker(next Doer, clock *fakeClock) *Breaker {
	return NewBreaker(next, BreakerConfig{
		FailureThreshold: 3,
		OpenTimeout:      30 * time.Second,
		SuccessThreshold: 2,
		Now:              clock.Now,
	})
}

func TestBreakerStaysClosedOnSuccess(t *testing.T) {
	s := &scriptedDoer{statuses: []int{200}}
	b := newTestBreaker(s, newFakeClock())
	for i := 0; i < 10; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503}}
	b := newTestBreaker(s, newFakeClock())
	for i := 0; i < 3; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open after 3 failures", b.State())
	}
	// Calls now fail fast without touching the dependency.
	before := s.calls.Load()
	_, err := get(t, b, "http://svc/")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if s.calls.Load() != before {
		t.Fatal("open breaker must not call the dependency")
	}
	if b.Rejected() != 1 {
		t.Fatalf("Rejected = %d", b.Rejected())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503, 503, 200, 503, 503, 200}}
	b := newTestBreaker(s, newFakeClock())
	for i := 0; i < 6; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v; interleaved successes should keep breaker closed", b.State())
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	clock := newFakeClock()
	s := &scriptedDoer{statuses: []int{503, 503, 503, 200, 200}}
	b := newTestBreaker(s, clock)
	for i := 0; i < 3; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}

	clock.Advance(31 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after the open timeout", b.State())
	}

	// Two successful probes (SuccessThreshold=2) close the breaker.
	for i := 0; i < 2; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probes", b.State())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	s := &scriptedDoer{statuses: []int{503}}
	b := newTestBreaker(s, clock)
	for i := 0; i < 3; i++ {
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
	}
	clock.Advance(31 * time.Second)
	resp, err := get(t, b, "http://svc/") // failing probe
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if b.State() != Open {
		t.Fatalf("state = %v, want re-opened", b.State())
	}
}

func TestBreakerFallback(t *testing.T) {
	clock := newFakeClock()
	s := &scriptedDoer{statuses: []int{503}}
	b := NewBreaker(s, BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Minute,
		Now:              clock.Now,
		Fallback:         StaticFallback(200, "cached"),
	})
	resp, err := get(t, b, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)

	// Breaker now open: fallback answers.
	resp, err = get(t, b, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, resp); got != "cached" || resp.StatusCode != 200 {
		t.Fatalf("fallback = %d %q", resp.StatusCode, got)
	}
}

func TestBreakerTransportErrorCountsAsFailure(t *testing.T) {
	s := &scriptedDoer{statuses: []int{0}}
	b := newTestBreaker(s, newFakeClock())
	for i := 0; i < 3; i++ {
		if _, err := get(t, b, "http://svc/"); err == nil {
			t.Fatal("want transport error")
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v", b.State())
	}
}

func TestBreakerDefaultsApplied(t *testing.T) {
	b := NewBreaker(&scriptedDoer{statuses: []int{200}}, BreakerConfig{})
	if b.cfg.FailureThreshold != 5 || b.cfg.OpenTimeout != 30*time.Second || b.cfg.SuccessThreshold != 1 {
		t.Fatalf("defaults = %+v", b.cfg)
	}
}

func TestBreakerHalfOpenLimitsConcurrentProbes(t *testing.T) {
	clock := newFakeClock()
	blocked := make(chan struct{})
	release := make(chan struct{})
	slow := DoerFunc(func(req *http.Request) (*http.Response, error) {
		close(blocked)
		<-release
		return StaticFallback(200, "ok")(req)
	})
	fail := &scriptedDoer{statuses: []int{503}}

	var current Doer = fail
	mux := DoerFunc(func(req *http.Request) (*http.Response, error) { return current.Do(req) })
	b := NewBreaker(mux, BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Second,
		Now:              clock.Now,
	})
	resp, err := get(t, b, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if b.State() != Open {
		t.Fatal("should be open")
	}

	clock.Advance(2 * time.Second)
	current = slow
	done := make(chan error, 1)
	go func() {
		resp, err := get(t, b, "http://svc/")
		if err == nil {
			mustRead(t, resp)
		}
		done <- err
	}()
	<-blocked
	// A second call while the probe is in flight is rejected.
	if _, err := get(t, b, "http://svc/"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("concurrent probe err = %v, want ErrCircuitOpen", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Closed, "closed"},
		{Open, "open"},
		{HalfOpen, "half-open"},
		{State(99), "State(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

// TestBreakerStateMachineProperty drives the breaker with random outcome
// sequences and random clock advances, checking invariants after every
// step:
//   - the state is always one of Closed/Open/HalfOpen;
//   - the dependency is never called while the breaker reports Open;
//   - a successful probe run of SuccessThreshold closes the breaker.
func TestBreakerStateMachineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seq []byte) bool {
		clock := newFakeClock()
		next := &scriptedDoer{statuses: []int{200}}
		b := NewBreaker(next, BreakerConfig{
			FailureThreshold: 3,
			OpenTimeout:      10 * time.Second,
			SuccessThreshold: 2,
			Now:              clock.Now,
		})
		for _, op := range seq {
			switch op % 4 {
			case 0: // successful call
				next.statuses = []int{200}
			case 1: // failing call
				next.statuses = []int{503}
			case 2: // transport error
				next.statuses = []int{0}
			case 3: // time passes
				clock.Advance(time.Duration(rng.Intn(15)) * time.Second)
				continue
			}
			stateBefore := b.State()
			callsBefore := next.calls.Load()
			resp, err := get(t, b, "http://svc/")
			if err == nil {
				mustRead(t, resp)
			}
			switch b.State() {
			case Closed, Open, HalfOpen:
			default:
				return false
			}
			if stateBefore == Open && next.calls.Load() != callsBefore {
				return false // called the dependency while open
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
