package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptrace"
	"sync/atomic"
	"time"
)

// ErrTimeout is returned (wrapped) when a call exceeds its deadline.
var ErrTimeout = errors.New("resilience: call timed out")

// Timeout enforces a per-call deadline on an underlying Doer (paper §2.1:
// "timeouts ensure that an API call to a microservice completes in bounded
// time").
type Timeout struct {
	next Doer
	d    time.Duration
}

var _ Doer = (*Timeout)(nil)

// NewTimeout wraps next with a deadline of d per call.
func NewTimeout(next Doer, d time.Duration) *Timeout {
	return &Timeout{next: next, d: d}
}

// Do implements Doer.
func (t *Timeout) Do(req *http.Request) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(req.Context(), t.d)
	resp, err := t.next.Do(req.WithContext(ctx))
	if err != nil {
		cancel()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w after %s: %v", ErrTimeout, t.d, err)
		}
		return nil, err
	}
	// Cancel when the body is closed, not before: the caller still needs to
	// read the response.
	resp.Body = &cancelOnCloseBody{body: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnCloseBody struct {
	body interface {
		Read([]byte) (int, error)
		Close() error
	}
	cancel context.CancelFunc
}

func (b *cancelOnCloseBody) Read(p []byte) (int, error) { return b.body.Read(p) }

func (b *cancelOnCloseBody) Close() error {
	err := b.body.Close()
	b.cancel()
	return err
}

// LeakyTimeout reproduces the timeout-handling bug the paper's case study
// discovered in the Unirest HTTP library (§7.1): the library's timeout
// pattern covered the response wait but "did not gracefully handle corner
// cases involving TCP connection timeout; instead the errors percolated to
// other parts of the microservice."
//
// LeakyTimeout starts its deadline timer only once a connection has been
// established (via httptrace.GotConn). If the dependency never accepts the
// connection — precisely what a Crash fault with a severed TCP connection
// or a blackholed host produces — no deadline applies and the raw transport
// error (or a long OS-level hang) leaks through.
//
// It exists so resilience tests can be demonstrated against a realistically
// buggy abstraction; do not use it in real services.
type LeakyTimeout struct {
	next Doer
	d    time.Duration
}

var _ Doer = (*LeakyTimeout)(nil)

// NewLeakyTimeout wraps next with the buggy timeout behaviour described
// above.
func NewLeakyTimeout(next Doer, d time.Duration) *LeakyTimeout {
	return &LeakyTimeout{next: next, d: d}
}

// Do implements Doer.
func (t *LeakyTimeout) Do(req *http.Request) (*http.Response, error) {
	ctx, cancel := context.WithCancel(req.Context())
	var fired atomic.Bool
	timer := time.AfterFunc(1<<62, func() { // effectively never, until armed
		fired.Store(true)
		cancel()
	})
	trace := &httptrace.ClientTrace{
		GotConn: func(httptrace.GotConnInfo) {
			// BUG (faithful to the case study): the deadline only starts
			// once the connection exists.
			timer.Reset(t.d)
		},
	}
	req = req.WithContext(httptrace.WithClientTrace(ctx, trace))
	resp, err := t.next.Do(req)
	if err != nil {
		timer.Stop()
		cancel()
		if fired.Load() {
			return nil, fmt.Errorf("%w after %s: %v", ErrTimeout, t.d, err)
		}
		return nil, err
	}
	resp.Body = &cancelOnCloseBody{body: resp.Body, cancel: func() {
		timer.Stop()
		cancel()
	}}
	return resp, nil
}
