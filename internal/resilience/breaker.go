package resilience

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when a call is rejected because the
// breaker is open.
var ErrCircuitOpen = errors.New("resilience: circuit breaker open")

// State is a circuit breaker state.
type State int

// Circuit breaker states (paper §2.1).
const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed State = iota + 1
	// Open: calls fail fast without touching the dependency.
	Open
	// HalfOpen: a limited number of probe calls test whether the
	// dependency has recovered.
	HalfOpen
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// BreakerConfig configures a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5).
	FailureThreshold int

	// OpenTimeout is how long the breaker stays open before allowing probe
	// calls (default 30 s).
	OpenTimeout time.Duration

	// SuccessThreshold is the number of consecutive half-open successes
	// that close the breaker (default 1).
	SuccessThreshold int

	// IsFailure classifies an outcome; the default counts transport errors
	// and 5xx responses as failures.
	IsFailure func(resp *http.Response, err error) bool

	// Now is the clock; nil uses time.Now. Injectable for tests.
	Now func() time.Time

	// Fallback, when non-nil, is invoked instead of returning
	// ErrCircuitOpen while the breaker is open — the paper's "caller
	// service returns a cached (or default) response to its upstream".
	Fallback func(req *http.Request) (*http.Response, error)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 30 * time.Second
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.IsFailure == nil {
		c.IsFailure = func(resp *http.Response, err error) bool {
			return err != nil || resp.StatusCode >= 500
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker around a Doer: after FailureThreshold
// consecutive failures it opens and fails fast (preventing failures from
// cascading up the microservice chain); after OpenTimeout it lets probe
// calls through, closing again once SuccessThreshold of them succeed.
type Breaker struct {
	next Doer
	cfg  BreakerConfig

	mu         sync.Mutex
	state      State
	failures   int // consecutive failures while closed
	successes  int // consecutive successes while half-open
	openedAt   time.Time
	probing    bool // a half-open probe is in flight
	shortCount int  // calls rejected while open, for introspection
}

var _ Doer = (*Breaker)(nil)

// NewBreaker wraps next with a circuit breaker.
func NewBreaker(next Doer, cfg BreakerConfig) *Breaker {
	return &Breaker{next: next, cfg: cfg.withDefaults(), state: Closed}
}

// State reports the current breaker state, applying the open→half-open
// transition if the open timeout has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Rejected reports how many calls have been rejected while open.
func (b *Breaker) Rejected() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shortCount
}

// Do implements Doer.
func (b *Breaker) Do(req *http.Request) (*http.Response, error) {
	if proceed, err := b.admit(); !proceed {
		if b.cfg.Fallback != nil {
			return b.cfg.Fallback(req)
		}
		return nil, err
	}

	resp, err := b.next.Do(req)
	b.record(b.cfg.IsFailure(resp, err))
	return resp, err
}

// admit decides whether a call may proceed under the current state.
func (b *Breaker) admit() (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case Closed:
		return true, nil
	case HalfOpen:
		if b.probing {
			b.shortCount++
			return false, fmt.Errorf("%w (half-open, probe in flight)", ErrCircuitOpen)
		}
		b.probing = true
		return true, nil
	default: // Open
		b.shortCount++
		retryIn := b.cfg.OpenTimeout - b.cfg.Now().Sub(b.openedAt)
		return false, fmt.Errorf("%w (retry in %s)", ErrCircuitOpen, retryIn.Round(time.Millisecond))
	}
}

// record applies an outcome to the state machine.
func (b *Breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if failed {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = Closed
			b.failures = 0
			b.successes = 0
		}
	case Open:
		// A call admitted before the breaker tripped finished late; its
		// outcome no longer matters.
	}
}

func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.successes = 0
	b.probing = false
}

// maybeHalfOpen transitions Open → HalfOpen once the open timeout elapses.
// Callers must hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.state = HalfOpen
		b.successes = 0
		b.probing = false
	}
}

// StaticFallback builds a Fallback returning a canned response with the
// given status and body — the "cached or default response" of §2.1.
func StaticFallback(status int, body string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
}
