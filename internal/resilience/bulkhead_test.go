package resilience

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

// gateDoer blocks every call until released.
type gateDoer struct {
	entered chan struct{}
	release chan struct{}
}

func newGateDoer(capacity int) *gateDoer {
	return &gateDoer{
		entered: make(chan struct{}, capacity),
		release: make(chan struct{}),
	}
}

func (g *gateDoer) Do(req *http.Request) (*http.Response, error) {
	g.entered <- struct{}{}
	<-g.release
	return StaticFallback(200, "ok")(req)
}

func TestBulkheadLimitsConcurrency(t *testing.T) {
	gate := newGateDoer(8)
	b := NewBulkhead(gate, 2, 0)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get(t, b, "http://svc/")
			if err != nil {
				t.Error(err)
				return
			}
			mustRead(t, resp)
		}()
	}
	// Wait until both in-flight calls hold slots.
	<-gate.entered
	<-gate.entered
	if b.InFlight() != 2 {
		t.Fatalf("InFlight = %d", b.InFlight())
	}

	// Third call is rejected immediately.
	if _, err := get(t, b, "http://svc/"); !errors.Is(err, ErrBulkheadFull) {
		t.Fatalf("err = %v, want ErrBulkheadFull", err)
	}

	close(gate.release)
	wg.Wait()
	if b.InFlight() != 0 {
		t.Fatalf("InFlight after completion = %d", b.InFlight())
	}
}

func TestBulkheadWaitsForSlot(t *testing.T) {
	gate := newGateDoer(8)
	b := NewBulkhead(gate, 1, time.Second)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := get(t, b, "http://svc/")
		if err != nil {
			t.Error(err)
			return
		}
		mustRead(t, resp)
	}()
	<-gate.entered

	// Second call waits; releasing the first frees its slot in time.
	done := make(chan error, 1)
	go func() {
		resp, err := get(t, b, "http://svc/")
		if err == nil {
			gate.entered <- struct{}{} // placeholder: not reached for gate
			mustRead(t, resp)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiting call failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting call never completed")
	}
}

func TestBulkheadWaitTimesOut(t *testing.T) {
	gate := newGateDoer(8)
	b := NewBulkhead(gate, 1, 30*time.Millisecond)
	go func() {
		resp, err := get(t, b, "http://svc/")
		if err == nil {
			mustRead(t, resp)
		}
	}()
	<-gate.entered
	start := time.Now()
	_, err := get(t, b, "http://svc/")
	if !errors.Is(err, ErrBulkheadFull) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("rejected before maxWait elapsed")
	}
	close(gate.release)
}

func TestBulkheadContextCancelDuringWait(t *testing.T) {
	gate := newGateDoer(8)
	b := NewBulkhead(gate, 1, time.Minute)
	go func() {
		resp, err := get(t, b, "http://svc/")
		if err == nil {
			mustRead(t, resp)
		}
	}()
	<-gate.entered

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://svc/", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := b.Do(req); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(gate.release)
}

func TestBulkheadErrorReleasesSlot(t *testing.T) {
	fail := &scriptedDoer{statuses: []int{0}}
	b := NewBulkhead(fail, 1, 0)
	for i := 0; i < 3; i++ {
		if _, err := get(t, b, "http://svc/"); err == nil {
			t.Fatal("want error")
		}
	}
	if b.InFlight() != 0 {
		t.Fatalf("InFlight = %d; error path leaked a slot", b.InFlight())
	}
}

func TestBulkheadSlotHeldUntilBodyClosed(t *testing.T) {
	ok := &scriptedDoer{statuses: []int{200}}
	b := NewBulkhead(ok, 1, 0)
	resp, err := get(t, b, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	if b.InFlight() != 1 {
		t.Fatalf("InFlight = %d while body open", b.InFlight())
	}
	mustRead(t, resp)
	if b.InFlight() != 0 {
		t.Fatalf("InFlight = %d after close", b.InFlight())
	}
}

func TestBulkheadMinimumCapacity(t *testing.T) {
	b := NewBulkhead(&scriptedDoer{statuses: []int{200}}, 0, 0)
	if b.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamped to 1", b.Capacity())
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next Doer) Doer {
			return DoerFunc(func(req *http.Request) (*http.Response, error) {
				order = append(order, name)
				return next.Do(req)
			})
		}
	}
	base := DoerFunc(func(req *http.Request) (*http.Response, error) {
		order = append(order, "base")
		return StaticFallback(200, "ok")(req)
	})
	d := Chain(base, mk("outer"), mk("inner"))
	resp, err := get(t, d, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if len(order) != 3 || order[0] != "outer" || order[1] != "inner" || order[2] != "base" {
		t.Fatalf("order = %v", order)
	}
}
