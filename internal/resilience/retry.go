package resilience

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy configures bounded retries with exponential backoff (paper
// §2.1: "API calls are retried a bounded number of times and are usually
// accompanied with an exponential backoff strategy").
type RetryPolicy struct {
	// MaxRetries is the number of retries after the initial attempt
	// (default 3, so up to 4 calls total).
	MaxRetries int

	// BaseBackoff is the delay before the first retry (default 10 ms).
	BaseBackoff time.Duration

	// MaxBackoff caps the backoff growth (default 1 s).
	MaxBackoff time.Duration

	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64

	// Jitter in [0,1) randomizes each backoff by ±Jitter fraction to avoid
	// synchronized retry storms (default 0, fully deterministic).
	Jitter float64

	// RetryOn decides whether an attempt's outcome is retryable. The
	// default retries transport errors and 5xx responses.
	RetryOn func(resp *http.Response, err error) bool

	// RNG drives jitter; nil uses a non-deterministic default.
	RNG *rand.Rand

	// Sleep is the clock used between attempts; nil uses time.Sleep.
	// Injectable for fast tests.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.RetryOn == nil {
		p.RetryOn = DefaultRetryOn
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// DefaultRetryOn retries transport errors and 5xx responses.
func DefaultRetryOn(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode >= 500
}

// Retry wraps a Doer with bounded, backed-off retries.
type Retry struct {
	next   Doer
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Doer = (*Retry)(nil)

// NewRetry wraps next with the given policy. MaxRetries < 0 disables
// retries entirely (single attempt).
func NewRetry(next Doer, policy RetryPolicy) *Retry {
	p := policy.withDefaults()
	rng := p.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &Retry{next: next, policy: p, rng: rng}
}

// Do implements Doer. The request body (if any) is buffered so it can be
// replayed on each attempt.
func (r *Retry) Do(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		closeErr := req.Body.Close()
		if err == nil {
			err = closeErr
		}
		if err != nil {
			return nil, fmt.Errorf("resilience: buffer request body: %w", err)
		}
	}

	attempts := 1
	if r.policy.MaxRetries > 0 {
		attempts += r.policy.MaxRetries
	}

	var (
		resp    *http.Response
		lastErr error
	)
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			r.policy.Sleep(r.Backoff(attempt - 1))
		}
		attemptReq := req.Clone(req.Context())
		if body != nil {
			attemptReq.Body = io.NopCloser(bytes.NewReader(body))
			attemptReq.ContentLength = int64(len(body))
		}
		resp, lastErr = r.next.Do(attemptReq)
		if !r.policy.RetryOn(resp, lastErr) {
			return resp, lastErr
		}
		if attempt == attempts-1 {
			// Budget exhausted: hand the final outcome to the caller
			// (response body left readable).
			break
		}
		// Retrying: release the connection of the failed attempt.
		if resp != nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
			_ = resp.Body.Close()
		}
		if err := req.Context().Err(); err != nil {
			return nil, fmt.Errorf("resilience: retries aborted: %w", err)
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("resilience: %d attempts failed: %w", attempts, lastErr)
	}
	return resp, nil
}

// Backoff returns the delay before retry number n (0-based), with
// exponential growth, cap, and jitter applied.
func (r *Retry) Backoff(n int) time.Duration {
	d := float64(r.policy.BaseBackoff)
	for i := 0; i < n; i++ {
		d *= r.policy.Multiplier
		if time.Duration(d) >= r.policy.MaxBackoff {
			d = float64(r.policy.MaxBackoff)
			break
		}
	}
	if time.Duration(d) > r.policy.MaxBackoff {
		d = float64(r.policy.MaxBackoff)
	}
	if r.policy.Jitter > 0 {
		r.mu.Lock()
		f := 1 + r.policy.Jitter*(2*r.rng.Float64()-1)
		r.mu.Unlock()
		d *= f
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
