package resilience

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func slowServer(t *testing.T, delay time.Duration, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, d Doer, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d.Do(req)
}

func mustRead(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTimeoutFastCallPasses(t *testing.T) {
	srv := slowServer(t, 0, "ok")
	d := NewTimeout(http.DefaultClient, time.Second)
	resp, err := get(t, d, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, resp); got != "ok" {
		t.Fatalf("body = %q", got)
	}
}

func TestTimeoutSlowCallFails(t *testing.T) {
	srv := slowServer(t, 2*time.Second, "late")
	d := NewTimeout(http.DefaultClient, 50*time.Millisecond)
	start := time.Now()
	_, err := get(t, d, srv.URL)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("timeout took %v, should fire at ~50ms", elapsed)
	}
}

func TestTimeoutNonTimeoutErrorPassesThrough(t *testing.T) {
	d := NewTimeout(http.DefaultClient, time.Second)
	_, err := get(t, d, "http://127.0.0.1:1/")
	if err == nil {
		t.Fatal("want connection error")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("connection refused misreported as timeout: %v", err)
	}
}

func TestLeakyTimeoutCoversSlowResponses(t *testing.T) {
	srv := slowServer(t, 2*time.Second, "late")
	d := NewLeakyTimeout(http.DefaultClient, 50*time.Millisecond)
	start := time.Now()
	_, err := get(t, d, srv.URL)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestLeakyTimeoutDoesNotCoverConnectFailures(t *testing.T) {
	// The reproduced Unirest bug: when the TCP connection itself fails, the
	// library's timeout never arms and the raw transport error percolates.
	d := NewLeakyTimeout(http.DefaultClient, 50*time.Millisecond)
	_, err := get(t, d, "http://127.0.0.1:1/")
	if err == nil {
		t.Fatal("want connection error")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("leaky timeout should NOT convert connect failures into graceful timeouts: %v", err)
	}
}

func TestLeakyTimeoutFastCallPasses(t *testing.T) {
	srv := slowServer(t, 0, "ok")
	d := NewLeakyTimeout(http.DefaultClient, time.Second)
	resp, err := get(t, d, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, resp); got != "ok" {
		t.Fatalf("body = %q", got)
	}
}
