// Package resilience implements the resiliency design patterns that
// Gremlin's pattern checks detect (paper §2.1): timeouts, bounded retries
// with exponential backoff, circuit breakers, and bulkheads.
//
// The demo microservices in internal/topology compose these wrappers around
// their dependency clients; building an application *with* a pattern makes
// the corresponding Gremlin assertion pass and building it *without* makes
// the assertion fail, which is exactly how the paper's experiments
// distinguish resilient from fragile services (§7.1).
//
// The wrappers share the Doer interface so they compose in any order:
//
//	client := resilience.Chain(http.DefaultClient,
//	    func(d resilience.Doer) resilience.Doer { return resilience.NewBulkhead(d, 16, 0) },
//	    func(d resilience.Doer) resilience.Doer { return resilience.NewBreaker(d, resilience.BreakerConfig{}) },
//	    func(d resilience.Doer) resilience.Doer { return resilience.NewRetry(d, resilience.RetryPolicy{}) },
//	    func(d resilience.Doer) resilience.Doer { return resilience.NewTimeout(d, time.Second) },
//	)
package resilience

import "net/http"

// Doer is the minimal HTTP client interface shared by all wrappers.
// *http.Client implements it.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// DoerFunc adapts a function to the Doer interface.
type DoerFunc func(req *http.Request) (*http.Response, error)

// Do implements Doer.
func (f DoerFunc) Do(req *http.Request) (*http.Response, error) { return f(req) }

// Middleware wraps a Doer with additional behaviour.
type Middleware func(Doer) Doer

// Chain applies middlewares to base so that the first middleware listed is
// the outermost (called first).
func Chain(base Doer, mws ...Middleware) Doer {
	d := base
	for i := len(mws) - 1; i >= 0; i-- {
		d = mws[i](d)
	}
	return d
}
