package resilience

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// scriptedDoer returns canned outcomes in order, then repeats the last.
type scriptedDoer struct {
	calls    atomic.Int64
	statuses []int // 0 means transport error
	bodies   []string
}

func (s *scriptedDoer) Do(req *http.Request) (*http.Response, error) {
	n := int(s.calls.Add(1)) - 1
	if req.Body != nil {
		b, _ := io.ReadAll(req.Body)
		_ = req.Body.Close()
		s.bodies = append(s.bodies, string(b))
	}
	idx := n
	if idx >= len(s.statuses) {
		idx = len(s.statuses) - 1
	}
	st := s.statuses[idx]
	if st == 0 {
		return nil, errors.New("scripted transport error")
	}
	return &http.Response{
		StatusCode: st,
		Body:       io.NopCloser(strings.NewReader("resp")),
		Header:     http.Header{},
	}, nil
}

func noSleep(time.Duration) {}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503, 503, 200}}
	r := NewRetry(s, RetryPolicy{MaxRetries: 3, Sleep: noSleep})
	resp, err := get(t, r, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	mustRead(t, resp)
	if s.calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", s.calls.Load())
	}
}

func TestRetryBoundIsRespected(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503}}
	r := NewRetry(s, RetryPolicy{MaxRetries: 5, Sleep: noSleep})
	resp, err := get(t, r, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	mustRead(t, resp)
	if s.calls.Load() != 6 { // 1 initial + 5 retries, never more
		t.Fatalf("calls = %d, want 6", s.calls.Load())
	}
}

func TestRetryTransportErrorsWrapped(t *testing.T) {
	s := &scriptedDoer{statuses: []int{0}}
	r := NewRetry(s, RetryPolicy{MaxRetries: 2, Sleep: noSleep})
	_, err := get(t, r, "http://svc/")
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("err = %v", err)
	}
	if s.calls.Load() != 3 {
		t.Fatalf("calls = %d", s.calls.Load())
	}
}

func TestRetryNoRetryOnSuccessOr4xx(t *testing.T) {
	for _, status := range []int{200, 404} {
		s := &scriptedDoer{statuses: []int{status}}
		r := NewRetry(s, RetryPolicy{MaxRetries: 3, Sleep: noSleep})
		resp, err := get(t, r, "http://svc/")
		if err != nil {
			t.Fatal(err)
		}
		mustRead(t, resp)
		if s.calls.Load() != 1 {
			t.Fatalf("status %d: calls = %d, want 1", status, s.calls.Load())
		}
	}
}

func TestRetryNegativeMaxRetriesSingleAttempt(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503}}
	r := NewRetry(s, RetryPolicy{MaxRetries: -1, Sleep: noSleep})
	resp, err := get(t, r, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if s.calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", s.calls.Load())
	}
}

func TestRetryReplaysRequestBody(t *testing.T) {
	s := &scriptedDoer{statuses: []int{503, 200}}
	r := NewRetry(s, RetryPolicy{MaxRetries: 2, Sleep: noSleep})
	req, err := http.NewRequest(http.MethodPost, "http://svc/", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := r.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if len(s.bodies) != 2 || s.bodies[0] != "payload" || s.bodies[1] != "payload" {
		t.Fatalf("bodies = %q", s.bodies)
	}
}

func TestRetryCustomRetryOn(t *testing.T) {
	s := &scriptedDoer{statuses: []int{404, 200}}
	r := NewRetry(s, RetryPolicy{
		MaxRetries: 2,
		Sleep:      noSleep,
		RetryOn: func(resp *http.Response, err error) bool {
			return err != nil || resp.StatusCode == 404
		},
	})
	resp, err := get(t, r, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if resp.StatusCode != 200 || s.calls.Load() != 2 {
		t.Fatalf("status %d, calls %d", resp.StatusCode, s.calls.Load())
	}
}

func TestRetryBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	r := NewRetry(nil, RetryPolicy{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Multiplier:  2,
		Sleep:       noSleep,
	})
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := r.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestRetryBackoffJitterBoundsProperty(t *testing.T) {
	r := NewRetry(nil, RetryPolicy{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		RNG:         rand.New(rand.NewSource(3)),
		Sleep:       noSleep,
	})
	f := func(n uint8) bool {
		k := int(n % 6)
		got := r.Backoff(k)
		base := 100 * time.Millisecond
		for i := 0; i < k; i++ {
			base *= 2
			if base >= time.Second {
				base = time.Second
				break
			}
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRetrySleepsBetweenAttempts(t *testing.T) {
	var slept []time.Duration
	s := &scriptedDoer{statuses: []int{503, 503, 200}}
	r := NewRetry(s, RetryPolicy{
		MaxRetries:  3,
		BaseBackoff: 7 * time.Millisecond,
		Multiplier:  2,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	resp, err := get(t, r, "http://svc/")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, resp)
	if len(slept) != 2 || slept[0] != 7*time.Millisecond || slept[1] != 14*time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
}
