package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ErrBulkheadFull is returned (wrapped) when a call is rejected because the
// bulkhead's concurrency budget is exhausted.
var ErrBulkheadFull = errors.New("resilience: bulkhead full")

// Bulkhead caps the number of concurrent in-flight calls through a Doer
// (paper §2.1): giving each dependency its own bulkhead prevents one slow
// dependency from exhausting the shared resources a service needs to reach
// its healthy dependencies.
type Bulkhead struct {
	next    Doer
	sem     chan struct{}
	maxWait time.Duration
}

var _ Doer = (*Bulkhead)(nil)

// NewBulkhead wraps next, allowing at most maxConcurrent in-flight calls.
// A call arriving while the bulkhead is full waits up to maxWait for a slot
// (0 rejects immediately).
func NewBulkhead(next Doer, maxConcurrent int, maxWait time.Duration) *Bulkhead {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	return &Bulkhead{
		next:    next,
		sem:     make(chan struct{}, maxConcurrent),
		maxWait: maxWait,
	}
}

// Capacity reports the bulkhead's concurrency budget.
func (b *Bulkhead) Capacity() int { return cap(b.sem) }

// InFlight reports the number of calls currently holding a slot.
func (b *Bulkhead) InFlight() int { return len(b.sem) }

// Do implements Doer.
func (b *Bulkhead) Do(req *http.Request) (*http.Response, error) {
	select {
	case b.sem <- struct{}{}:
	default:
		if b.maxWait <= 0 {
			return nil, fmt.Errorf("%w (capacity %d)", ErrBulkheadFull, cap(b.sem))
		}
		timer := time.NewTimer(b.maxWait)
		defer timer.Stop()
		select {
		case b.sem <- struct{}{}:
		case <-timer.C:
			return nil, fmt.Errorf("%w after waiting %s (capacity %d)", ErrBulkheadFull, b.maxWait, cap(b.sem))
		case <-req.Context().Done():
			return nil, fmt.Errorf("resilience: bulkhead wait aborted: %w", req.Context().Err())
		}
	}

	resp, err := b.next.Do(req)
	if err != nil {
		<-b.sem
		return nil, err
	}
	// Hold the slot until the caller finishes reading the response: the
	// resource being isolated is the whole in-flight exchange.
	resp.Body = &releaseOnCloseBody{body: resp.Body, release: func() { <-b.sem }}
	return resp, nil
}

type releaseOnCloseBody struct {
	body interface {
		Read([]byte) (int, error)
		Close() error
	}
	release  func()
	released bool
}

func (b *releaseOnCloseBody) Read(p []byte) (int, error) { return b.body.Read(p) }

func (b *releaseOnCloseBody) Close() error {
	err := b.body.Close()
	if !b.released {
		b.released = true
		b.release()
	}
	return err
}
