package explore

import (
	"sort"
	"strings"
	"sync"

	"gremlin/internal/campaign"
	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
	"gremlin/internal/trace"
	"gremlin/internal/tracing"
)

// Point is one entry of the injection-point inventory: a call path the
// explorer has observed executing, named by its canonical execution index.
// One graph edge hosts many points (fan-out ordinals, retry branches), and
// some points exist only while another fault is staged — the inventory
// holds exactly what was observed reachable, never a fantasy grid.
type Point struct {
	// EI is the point's canonical execution index (X-Gremlin-EI form).
	EI string `json:"ei"`

	// Src and Dst are the caller and callee of the hop, as observed.
	// Src may be empty for points restored from a journal (the index
	// records the callee chain only); it is backfilled when the point is
	// re-observed live.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`

	// RevealedBy lists the execution indexes of the enabling faults under
	// which this point first became reachable. Empty means the point is
	// reachable fault-free (it appeared in the baseline probe).
	RevealedBy []string `json:"revealedBy,omitempty"`

	// Round is the frontier round that discovered the point (0 = the
	// baseline probe).
	Round int `json:"round"`

	// Exercised reports whether a unit pinned to this point has settled.
	Exercised bool `json:"exercised"`

	// Unbuildable carries the reason no unit can target the point (e.g.
	// its edge is outside the application graph); such points are excluded
	// from the frontier but stay in the inventory for reporting.
	Unbuildable string `json:"unbuildable,omitempty"`
}

// pointFault is one staged fault of an explore unit, precise enough to be
// replayed as a prerequisite: the revealing unit's exact abort (edge,
// execution index, and message phase). Phase matters — a response-phase
// abort lets the callee's subtree execute first, so replaying a revealing
// response abort as a request abort would cut off the very path it
// revealed.
type pointFault struct {
	src, dst, ei string
	on           rules.MessageType
}

// explorer is the mutable search state shared between the frontier loop
// and the harvest callbacks running on campaign worker goroutines.
type explorer struct {
	o      Options
	source eventlog.Source

	mu     sync.Mutex
	points map[string]*Point
	order  []string // discovery order, for deterministic frontiers

	// prereqs maps a revealed point to the fault set that revealed it.
	prereqs map[string][]pointFault

	// paths are the distinct critical-path EI sequences observed among
	// fault-free (baseline) points, feeding combo generation.
	paths    [][]string
	pathSeen map[string]bool

	// entries is the latest journal entry per unit key, merged across
	// restored sessions and this one; the final scorecard folds it.
	entries map[string]campaign.Entry

	// combosBuilt claims combo keys already handed to a round this session.
	combosBuilt map[string]bool

	pruned int

	// journalErr is the first failure persisting a reveal entry; surfaced
	// when the exploration returns, since a lost discovery silently weakens
	// the resume contract.
	journalErr error
}

func newExplorer(o Options, source eventlog.Source) *explorer {
	return &explorer{
		o:        o,
		source:   source,
		points:   make(map[string]*Point),
		prereqs:  make(map[string][]pointFault),
		pathSeen: make(map[string]bool),
		entries:  make(map[string]campaign.Entry),
	}
}

// harvest assembles the records matching pat into span trees and folds
// every observed execution index into the inventory. revealedBy is the
// fault set staged while the records were produced (nil for the baseline
// probe): points first seen under it are reachable only because of it.
// Fault-revealed discoveries are journalled immediately — the revealing
// unit settles as done and never re-runs, so a kill between discovery and
// the point's own unit would otherwise lose the point forever. Returns how
// many previously unknown points were discovered.
func (e *explorer) harvest(pat string, revealedBy []pointFault, round int) int {
	traces, err := tracing.FromSource(e.source, eventlog.Query{IDPattern: pat})
	if err != nil {
		return 0
	}
	e.mu.Lock()
	discovered := 0
	var reveals []campaign.Entry
	for _, t := range traces {
		for _, s := range t.Spans {
			if s.EI == "" {
				continue
			}
			ei := trace.CanonicalEI(s.EI)
			if ei == "" {
				continue
			}
			if p, ok := e.points[ei]; ok {
				// EI-equivalent duplicate: the same injection point
				// observed again (another request, another interleaving).
				// Dropped before any unit is built for it.
				e.pruned++
				if p.Src == "" {
					p.Src, p.Dst = s.Src, s.Dst
				}
				continue
			}
			p := &Point{EI: ei, Src: s.Src, Dst: s.Dst, Round: round}
			for _, f := range revealedBy {
				p.RevealedBy = append(p.RevealedBy, f.ei)
			}
			e.points[ei] = p
			e.order = append(e.order, ei)
			if len(revealedBy) > 0 {
				e.prereqs[ei] = append([]pointFault(nil), revealedBy...)
				reveals = append(reveals, revealEntry(e.o.ID, p, revealedBy))
			}
			discovered++
		}
		// Fault-free critical paths seed multi-fault combination units.
		// Paths observed under staged faults are skipped: their points
		// carry prerequisites of their own, and mixing prerequisite sets
		// in one combo is not replayable.
		if len(revealedBy) == 0 {
			e.recordPathLocked(t)
		}
	}
	e.mu.Unlock()

	for _, en := range reveals {
		if err := campaign.AppendEntry(e.o.JournalPath, en); err != nil {
			e.mu.Lock()
			if e.journalErr == nil {
				e.journalErr = err
			}
			e.mu.Unlock()
		}
	}
	return discovered
}

// revealEntry encodes one fault-revealed discovery as a journal line. Its
// unit key matches no schedulable unit, so campaign resume ignores it; only
// the explorer's own restore consumes the Reveal payload.
func revealEntry(id string, p *Point, revealedBy []pointFault) campaign.Entry {
	r := &campaign.RevealedPoint{EI: p.EI, Src: p.Src, Dst: p.Dst, Round: p.Round}
	for _, f := range revealedBy {
		r.By = append(r.By, campaign.RevealedFault{
			Src: f.src, Dst: f.dst, EI: f.ei, On: string(f.on),
		})
	}
	return campaign.Entry{
		Campaign: id,
		Unit:     "reveal-" + p.EI,
		Kind:     "explore-reveal",
		Service:  p.Dst,
		Target:   p.EI,
		Status:   campaign.StatusSkipped,
		Reason:   "injection point revealed under fault; journalled for resume",
		Reveal:   r,
	}
}

func (e *explorer) recordPathLocked(t *tracing.Trace) {
	cp := t.CriticalPath()
	var seq []string
	for _, st := range cp.Steps {
		if st.Span.EI == "" {
			continue
		}
		seq = append(seq, trace.CanonicalEI(st.Span.EI))
	}
	if len(seq) < 2 {
		return
	}
	key := strings.Join(seq, "+")
	if e.pathSeen[key] {
		return
	}
	e.pathSeen[key] = true
	e.paths = append(e.paths, seq)
}

// restore replays one journal entry from a previous session: its unit's
// pinned execution indexes become exercised inventory points, so the
// frontier never rebuilds work the journal already settled. Src is parsed
// from the index where possible and backfilled on live re-observation.
// Reveal entries restore the frontier instead: a revealed point returns
// unexercised, with its enabling faults ready to replay — a later pt-
// entry in the same journal marks it exercised.
func (e *explorer) restore(en campaign.Entry) {
	if en.Reveal != nil {
		e.restoreReveal(en.Reveal)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.entries[en.Unit] = en
	for _, ei := range en.EIs {
		ei = trace.CanonicalEI(ei)
		if ei == "" {
			continue
		}
		p, ok := e.points[ei]
		if !ok {
			p = &Point{EI: ei, Dst: eiDst(ei)}
			e.points[ei] = p
			e.order = append(e.order, ei)
		}
		p.Exercised = true
	}
}

// restoreReveal rebuilds one journalled discovery: the point enters the
// inventory unexercised, carrying the fault set that revealed it, so the
// next frontier round builds its unit with the prerequisites replayed.
func (e *explorer) restoreReveal(r *campaign.RevealedPoint) {
	ei := trace.CanonicalEI(r.EI)
	if ei == "" {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.points[ei]
	if !ok {
		p = &Point{EI: ei, Round: r.Round}
		e.points[ei] = p
		e.order = append(e.order, ei)
	}
	if p.Src == "" {
		p.Src = r.Src
	}
	if p.Dst == "" {
		p.Dst = r.Dst
	}
	if len(p.RevealedBy) == 0 {
		for _, f := range r.By {
			p.RevealedBy = append(p.RevealedBy, f.EI)
		}
	}
	if len(e.prereqs[ei]) == 0 && len(r.By) > 0 {
		fs := make([]pointFault, 0, len(r.By))
		for _, f := range r.By {
			fs = append(fs, pointFault{src: f.Src, dst: f.Dst, ei: f.EI, on: rules.MessageType(f.On)})
		}
		e.prereqs[ei] = fs
	}
}

// settle records a session entry and marks the unit's points exercised.
// Skipped entries count too: a skip means another unit with an identical
// fault signature — necessarily pinning the same indexes — already ran.
func (e *explorer) settle(en campaign.Entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.entries[en.Unit] = en
	if en.Status == campaign.StatusError {
		return
	}
	for _, ei := range en.EIs {
		if p, ok := e.points[ei]; ok {
			p.Exercised = true
		}
	}
}

// eiDst is the callee of an execution index's final frame, or "" for a
// bare truncation marker.
func eiDst(ei string) string {
	frames, _ := trace.ParseEI(ei)
	if len(frames) == 0 {
		return ""
	}
	return frames[len(frames)-1].Service
}

// size returns the inventory size (for dry-round detection).
func (e *explorer) size() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.points)
}

// snapshot copies the inventory in EI order.
func (e *explorer) snapshot() []Point {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Point, 0, len(e.points))
	for _, ei := range e.order {
		out = append(out, *e.points[ei])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EI < out[j].EI })
	return out
}

// sortedEntries returns the merged journal view in unit-key order, the
// deterministic input for the final scorecard.
func (e *explorer) sortedEntries() []campaign.Entry {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.entries))
	for k := range e.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]campaign.Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, e.entries[k])
	}
	return out
}
