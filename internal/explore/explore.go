// Package explore implements Gremlin's coverage-guided search plane: it
// turns observed traces into an inventory of execution-indexed injection
// points and drives the campaign engine over the frontier of unexercised
// points until the fault space runs dry.
//
// The plane closes a loop the static enumerator cannot: campaign.Enumerate
// targets the edges of the declared graph, but faults land on call paths,
// not edges — one edge hosts many points (fan-out ordinals, retries), and
// some paths (fallback and retry branches) only exist while another fault
// is staged. The explorer works from evidence instead:
//
//  1. Inventory. A fault-free probe run is assembled into span trees
//     (internal/tracing) and canonicalized into deduplicated, EI-keyed
//     injection points. Only points observed reachable enter the search
//     space.
//  2. Frontier. Each round builds one unit per unexercised point — an
//     abort pinned to the point's execution index, staged together with
//     the enabling faults that revealed it — plus bounded multi-fault
//     combinations along observed critical paths, and runs them through
//     campaign.Run under the shared journal. After each unit the run's
//     traces are mined for points that only appeared under its faults;
//     they join the next frontier.
//  3. Convergence. Exploration ends when DryRounds consecutive rounds
//     discover nothing new (or MaxRounds bounds the loop). A killed run
//     resumes from the campaign journal: completed points are restored
//     from the journalled execution indexes, not re-run.
package explore

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
)

// Options tunes an exploration.
type Options struct {
	// ID names the exploration; it prefixes run IDs and request-ID
	// namespaces (like campaign.Options.ID). Defaults to "explore".
	ID string

	// JournalPath is the shared campaign journal every round appends to.
	// A killed exploration resumes from it. Empty disables persistence
	// (and with it, resume).
	JournalPath string

	// Load injects test traffic for one run, exactly as in
	// campaign.Options.Load: every synthetic request must carry a request
	// ID starting with idPrefix. Required — the probe and every frontier
	// unit drive it.
	Load func(ctx context.Context, idPrefix string) error

	// Cleanup reclaims a run's records after they have been harvested
	// (typically Store.ClearMatching). The explorer always mines a run's
	// traces before invoking it.
	Cleanup func(idPattern string)

	// Parallelism bounds each round's worker pool (default 2).
	Parallelism int

	// MaxRounds bounds the frontier loop (default 8).
	MaxRounds int

	// DryRounds is how many consecutive rounds must discover no new
	// points before the exploration converges (default 2).
	DryRounds int

	// MaxCombination bounds the size of multi-fault combination units
	// generated along observed critical paths (default 2; 1 disables
	// combos).
	MaxCombination int

	// MaxCombos bounds how many combination units are generated in total
	// (default 8).
	MaxCombos int

	// ErrorCode is the abort status injected at each point (default 503).
	ErrorCode int

	// LeaseTTL leases each run's staged faults (campaign.Options.LeaseTTL).
	LeaseTTL time.Duration

	// OnEntry observes each journal entry as it settles (progress
	// reporting; called from worker goroutines).
	OnEntry func(campaign.Entry)
}

func (o Options) withDefaults() Options {
	if o.ID == "" {
		o.ID = "explore"
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 2
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.DryRounds <= 0 {
		o.DryRounds = 2
	}
	if o.MaxCombination <= 0 {
		o.MaxCombination = 2
	}
	if o.MaxCombos <= 0 {
		o.MaxCombos = 8
	}
	if o.ErrorCode == 0 {
		o.ErrorCode = http.StatusServiceUnavailable
	}
	return o
}

// Result is the outcome of an exploration.
type Result struct {
	// Scorecard aggregates every settled unit (this session and restored
	// ones) with Explore coverage counters filled in.
	Scorecard *campaign.Scorecard

	// Points is the final injection-point inventory, in EI order.
	Points []Point `json:"points"`

	// Rounds is how many frontier rounds this session ran; Converged
	// reports whether the frontier ran dry (rather than MaxRounds or
	// cancellation ending the loop).
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`

	// PointsPruned counts EI-equivalent duplicate candidates dropped at
	// inventory time, before any unit was built for them.
	PointsPruned int `json:"pointsPruned"`
}

// Revealed returns the points that were reachable only under an enabling
// fault — call paths absent from the fault-free baseline.
func (r *Result) Revealed() []Point {
	var out []Point
	for _, p := range r.Points {
		if len(p.RevealedBy) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Explore runs a coverage-guided exploration against the runner's
// deployment: probe, then frontier rounds until convergence. It stops
// early — returning everything settled so far and ctx.Err() — when ctx is
// cancelled; in-flight runs drain and journal first, so a later call with
// the same JournalPath resumes instead of repeating them.
func Explore(ctx context.Context, runner *core.Runner, opts Options) (*Result, error) {
	if opts.Load == nil {
		return nil, errors.New("explore: Options.Load is required")
	}
	o := opts.withDefaults()
	e := newExplorer(o, runner.Checker().Source())

	// Resume: completed units' pinned indexes become exercised points
	// before anything runs, so the frontier never rebuilds settled work.
	prior, err := campaign.LoadJournal(o.JournalPath)
	if err != nil {
		return nil, err
	}
	for _, en := range prior {
		if en.Status == campaign.StatusError {
			continue // errored units re-run, as in campaign resume
		}
		e.restore(en)
	}

	// Baseline probe: one fault-free load, mined for the initial point
	// inventory and the critical paths that seed combination units.
	if err := e.probe(ctx, runner); err != nil {
		return nil, err
	}

	rounds, dry, converged := 0, 0, false
	for rounds < o.MaxRounds && ctx.Err() == nil {
		rounds++
		units, faults := e.frontierUnits(runner.Graph())
		before := e.size()
		if len(units) > 0 {
			if err := e.runRound(ctx, runner, rounds, units, faults); err != nil {
				return nil, err
			}
		}
		if e.size() == before {
			dry++
		} else {
			dry = 0
		}
		if dry >= o.DryRounds {
			converged = true
			break
		}
	}

	res := &Result{
		Points:       e.snapshot(),
		Rounds:       rounds,
		Converged:    converged,
		PointsPruned: e.pruned,
	}
	sc := campaign.BuildScorecard(o.ID, runner.Graph(), e.sortedEntries())
	exercised, revealed := 0, 0
	for _, p := range res.Points {
		if p.Exercised {
			exercised++
		}
		if len(p.RevealedBy) > 0 {
			revealed++
		}
	}
	sc.Explore = &campaign.ExploreCoverage{
		PointsDiscovered: len(res.Points),
		PointsExercised:  exercised,
		PointsRevealed:   revealed,
		PointsPruned:     res.PointsPruned,
		Rounds:           rounds,
		Converged:        converged,
	}
	res.Scorecard = sc
	e.mu.Lock()
	jerr := e.journalErr
	e.mu.Unlock()
	if jerr != nil {
		return res, fmt.Errorf("explore: journalling discovery: %w", jerr)
	}
	return res, ctx.Err()
}

// probe drives one fault-free load under the exploration's own namespace
// and harvests the baseline inventory from its traces.
func (e *explorer) probe(ctx context.Context, runner *core.Runner) error {
	idPrefix := fmt.Sprintf("camp-%s-probe-", e.o.ID)
	pat := idPrefix + "*"
	if err := e.o.Load(ctx, idPrefix); err != nil {
		return fmt.Errorf("explore: probe load: %w", err)
	}
	if err := runner.Orchestrator().FlushAll(ctx); err != nil {
		return fmt.Errorf("explore: probe flush: %w", err)
	}
	e.harvest(pat, nil, 0)
	if e.o.Cleanup != nil {
		e.o.Cleanup(pat)
	}
	return nil
}

// runRound executes one frontier round through the campaign engine. The
// Cleanup hook is where discovery happens: it fires after a run's blast
// radius is computed but before its records are reclaimed, so the round's
// traces are mined for newly revealed points at exactly the right moment.
func (e *explorer) runRound(ctx context.Context, runner *core.Runner, round int, units []campaign.Unit, faults unitFaults) error {
	roundID := fmt.Sprintf("%s-r%d", e.o.ID, round)
	copts := campaign.Options{
		ID:          roundID,
		Parallelism: e.o.Parallelism,
		JournalPath: e.o.JournalPath,
		Load:        e.o.Load,
		LeaseTTL:    e.o.LeaseTTL,
		Cleanup: func(pat string) {
			if u, ok := unitForPattern(roundID, pat, units); ok {
				e.harvest(pat, faults[u.Key], round)
			}
			if e.o.Cleanup != nil {
				e.o.Cleanup(pat)
			}
		},
		OnEntry: func(en campaign.Entry) {
			e.settle(en)
			if e.o.OnEntry != nil {
				e.o.OnEntry(en)
			}
		},
	}
	if _, err := campaign.Run(ctx, runner, units, copts); err != nil && ctx.Err() == nil {
		return fmt.Errorf("explore: round %d: %w", round, err)
	}
	return nil
}

// unitForPattern maps a run's request-ID pattern ("camp-<roundID>-<idx>-*")
// back to the unit that owns it, recovering the fault context the campaign
// engine's Cleanup hook does not carry.
func unitForPattern(roundID, pat string, units []campaign.Unit) (campaign.Unit, bool) {
	prefix := "camp-" + roundID + "-"
	if !strings.HasPrefix(pat, prefix) || !strings.HasSuffix(pat, "-*") {
		return campaign.Unit{}, false
	}
	idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(pat, prefix), "-*"))
	if err != nil || idx < 0 || idx >= len(units) {
		return campaign.Unit{}, false
	}
	return units[idx], true
}
