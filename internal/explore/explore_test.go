package explore_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/explore"
	"gremlin/internal/loadgen"
	"gremlin/internal/microservice"
	"gremlin/internal/orchestrator"
	"gremlin/internal/topology"
)

// fallbackSpec is the canonical exploration target: a frontend that calls
// primary and falls back to backup only when primary fails. The
// frontend→backup call path exists in the static graph but never executes
// fault-free, so only evidence-driven search can find and exercise its
// injection point.
func fallbackSpec() topology.Spec {
	return topology.Spec{Services: []topology.ServiceSpec{
		{Name: "frontend", DependsOn: []string{"primary", "backup"},
			Handler: microservice.FallbackHandler("primary", "backup")},
		{Name: "primary"},
		{Name: "backup"},
	}}
}

func newHarness(t *testing.T) (*topology.App, *core.Runner) {
	t.Helper()
	spec := fallbackSpec()
	spec.RNG = rand.New(rand.NewSource(11))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := app.Close(); err != nil {
			t.Errorf("close app: %v", err)
		}
	})
	orch := orchestrator.New(app.Registry)
	return app, core.NewRunner(app.Graph, orch, app.Store, app.Store)
}

func exploreOpts(app *topology.App, journal string) explore.Options {
	var seed atomic.Int64
	return explore.Options{
		ID:          "xp",
		JournalPath: journal,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: 4, Concurrency: 2, IDPrefix: idPrefix,
				Context: ctx,
				RNG:     rand.New(rand.NewSource(seed.Add(1))),
			})
			return err
		},
		Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
	}
}

// TestExploreFallbackDiscovery is the subsystem's acceptance test: the
// explorer inventories the baseline call paths, exercises each point,
// discovers the fallback branch that only exists under fault, exercises
// that too, and converges with the full story on the scorecard.
func TestExploreFallbackDiscovery(t *testing.T) {
	app, runner := newHarness(t)
	journal := filepath.Join(t.TempDir(), "explore.jsonl")

	res, err := explore.Explore(context.Background(), runner, exploreOpts(app, journal))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("exploration did not converge in %d rounds", res.Rounds)
	}

	byEI := map[string]explore.Point{}
	for _, p := range res.Points {
		byEI[p.EI] = p
	}
	for _, ei := range []string{"frontend#0", "frontend#0/primary#0"} {
		p, ok := byEI[ei]
		if !ok {
			t.Fatalf("baseline point %s not discovered; have %+v", ei, res.Points)
		}
		if len(p.RevealedBy) != 0 || !p.Exercised {
			t.Fatalf("baseline point %s = %+v, want revealed-by-nothing and exercised", ei, p)
		}
	}

	// The fallback branch: absent from the baseline, revealed by the
	// primary's fault, and exercised under that prerequisite.
	backup, ok := byEI["frontend#0/backup#0"]
	if !ok {
		t.Fatalf("fallback point not discovered; have %+v", res.Points)
	}
	if len(backup.RevealedBy) == 0 {
		t.Fatalf("fallback point %+v should carry the revealing fault set", backup)
	}
	if !backup.Exercised {
		t.Fatalf("fallback point %+v was discovered but never exercised", backup)
	}
	if backup.Round == 0 {
		t.Fatalf("fallback point claims baseline round: %+v", backup)
	}

	// Every probe request re-observes the same call paths, so plenty of
	// EI-equivalent candidates must have been pruned at inventory time.
	if res.PointsPruned < 1 {
		t.Fatalf("PointsPruned = %d, want >= 1", res.PointsPruned)
	}

	x := res.Scorecard.Explore
	if x == nil {
		t.Fatal("scorecard carries no explore coverage")
	}
	if x.PointsDiscovered != len(res.Points) || x.PointsExercised < 3 ||
		x.PointsRevealed < 1 || x.PointsPruned != res.PointsPruned || !x.Converged {
		t.Fatalf("explore coverage = %+v, want discovered=%d exercised>=3 revealed>=1", x, len(res.Points))
	}
	if !strings.Contains(res.Scorecard.Markdown(), "Explore coverage:") {
		t.Fatal("scorecard Markdown missing the explore coverage line")
	}

	// The journal carries each unit's pinned indexes, the resume contract.
	entries, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	sawEIs := false
	for _, e := range entries {
		if strings.HasPrefix(e.Unit, "pt-") && len(e.EIs) > 0 {
			sawEIs = true
		}
	}
	if !sawEIs {
		t.Fatalf("no journalled unit carries EIs: %+v", entries)
	}
}

// TestExploreResumeNoRerun re-runs a completed exploration against its
// journal: every point is restored as exercised, the frontier stays empty,
// and no unit executes again.
func TestExploreResumeNoRerun(t *testing.T) {
	app, runner := newHarness(t)
	journal := filepath.Join(t.TempDir(), "explore.jsonl")

	if _, err := explore.Explore(context.Background(), runner, exploreOpts(app, journal)); err != nil {
		t.Fatal(err)
	}
	before, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}

	opts := exploreOpts(app, journal)
	var reran atomic.Int64
	opts.OnEntry = func(campaign.Entry) { reran.Add(1) }
	res, err := explore.Explore(context.Background(), runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := reran.Load(); n != 0 {
		t.Fatalf("resume re-executed %d units", n)
	}
	after, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("journal grew across a no-op resume: %d -> %d entries", len(before), len(after))
	}
	if !res.Converged {
		t.Fatal("resumed exploration did not converge")
	}
	if x := res.Scorecard.Explore; x == nil || x.PointsExercised < 3 {
		t.Fatalf("resumed coverage lost exercised points: %+v", x)
	}
}

// TestExploreKilledMidwayResumes cancels an exploration after its first
// settled unit, then runs a second session on the same journal: completed
// points are not re-run, and the second session still converges with full
// coverage.
func TestExploreKilledMidwayResumes(t *testing.T) {
	app, runner := newHarness(t)
	journal := filepath.Join(t.TempDir(), "explore.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	opts := exploreOpts(app, journal)
	var mu sync.Mutex
	firstKeys := map[string]bool{}
	opts.Parallelism = 1
	opts.OnEntry = func(e campaign.Entry) {
		mu.Lock()
		defer mu.Unlock()
		firstKeys[e.Unit] = true
		if len(firstKeys) == 1 {
			cancel() // kill after the first settled unit
		}
	}
	if _, err := explore.Explore(ctx, runner, opts); err == nil {
		t.Fatal("cancelled exploration returned nil error")
	}
	if len(firstKeys) == 0 {
		t.Skip("cancellation won the race before any unit settled")
	}

	opts2 := exploreOpts(app, journal)
	rerun := map[string]bool{}
	opts2.OnEntry = func(e campaign.Entry) {
		mu.Lock()
		defer mu.Unlock()
		rerun[e.Unit] = true
	}
	res, err := explore.Explore(context.Background(), runner, opts2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range firstKeys {
		if rerun[k] {
			t.Fatalf("unit %s from the killed session was re-run", k)
		}
	}
	if !res.Converged {
		t.Fatal("second session did not converge")
	}
	for _, p := range res.Points {
		if p.Src != "" && p.Unbuildable == "" && !p.Exercised {
			t.Fatalf("point %+v left unexercised after resume", p)
		}
	}
}
