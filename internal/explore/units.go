package explore

import (
	"fmt"
	"strings"

	"gremlin/internal/campaign"
	"gremlin/internal/checker"
	"gremlin/internal/core"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// unitFaults remembers which faults each synthesized unit stages, so the
// harvest callback can attribute newly revealed points to the exact fault
// set that made them reachable.
type unitFaults map[string][]pointFault

// frontierUnits builds one unit per unexercised, buildable point — the
// point's own abort pinned to its execution index, staged together with
// the prerequisite faults that revealed it — plus bounded multi-fault
// combination units along observed critical paths. Units whose canonical
// translation fails (edge outside the graph) mark their point unbuildable
// and are dropped from the frontier rather than erroring the round.
func (e *explorer) frontierUnits(g *graph.Graph) ([]campaign.Unit, unitFaults) {
	e.mu.Lock()
	type cand struct {
		p       *Point
		prereqs []pointFault
	}
	var cands []cand
	for _, ei := range e.order {
		p := e.points[ei]
		if p.Exercised || p.Unbuildable != "" || p.Src == "" {
			continue
		}
		cands = append(cands, cand{p: p, prereqs: e.prereqs[ei]})
	}
	combos := e.comboSeqsLocked()
	e.mu.Unlock()

	var units []campaign.Unit
	faults := make(unitFaults)
	for _, c := range cands {
		u, fs := e.pointUnit(c.p, c.prereqs)
		us := []campaign.Unit{u}
		if err := campaign.Finalize(g, us); err != nil {
			e.mu.Lock()
			c.p.Unbuildable = err.Error()
			e.mu.Unlock()
			continue
		}
		units = append(units, us[0])
		faults[u.Key] = fs
	}
	for _, seq := range combos {
		u, fs, ok := e.comboUnit(seq)
		if !ok {
			continue
		}
		us := []campaign.Unit{u}
		if err := campaign.Finalize(g, us); err != nil {
			continue
		}
		units = append(units, us[0])
		faults[u.Key] = fs
	}
	return units, faults
}

// pointUnit builds the unit exercising one point: its prerequisite aborts
// (replayed with their original message phase) plus an abort pinned to the
// point's own execution index, asserted to fire at exactly that index.
func (e *explorer) pointUnit(p *Point, prereqs []pointFault) (campaign.Unit, []pointFault) {
	fs := append(append([]pointFault(nil), prereqs...),
		pointFault{src: p.Src, dst: p.Dst, ei: p.EI})
	eis := make([]string, 0, len(fs))
	for _, f := range fs {
		eis = append(eis, f.ei)
	}
	key := "pt-" + p.EI
	src, dst, ei := p.Src, p.Dst, p.EI
	code := e.o.ErrorCode
	return campaign.Unit{
		Key:     key,
		Kind:    "explore",
		Service: dst,
		Target:  ei,
		EIs:     eis,
		Build: func(pattern string) (core.Recipe, error) {
			rec := core.Recipe{Name: key, Pattern: pattern}
			for _, f := range fs {
				rec.Scenarios = append(rec.Scenarios, core.Abort{
					Src: f.src, Dst: f.dst, ErrorCode: code,
					Probability: 1, On: f.on, CallPath: f.ei,
				})
			}
			rec.Checks = []core.Check{expectFaultAt(src, dst, ei, pattern)}
			return rec, nil
		},
	}, fs
}

// comboSeqsLocked expands the observed critical paths into bounded
// multi-fault windows: every run of adjacent path points of size
// 2..MaxCombination, at most MaxCombos in total. Callers hold e.mu.
func (e *explorer) comboSeqsLocked() [][]string {
	if e.o.MaxCombination < 2 {
		return nil
	}
	var out [][]string
	for _, path := range e.paths {
		for size := 2; size <= e.o.MaxCombination; size++ {
			for i := 0; i+size <= len(path); i++ {
				if len(out) >= e.o.MaxCombos {
					return out
				}
				out = append(out, path[i:i+size])
			}
		}
	}
	return out
}

// comboUnit builds a multi-fault unit aborting every point of one
// critical-path window at once. The aborts fire on the response phase, so
// an ancestor's fault does not cut off the descendant call it would
// otherwise suppress — every member point executes and every member fault
// is asserted to fire at its own index.
func (e *explorer) comboUnit(seq []string) (campaign.Unit, []pointFault, bool) {
	e.mu.Lock()
	fs := make([]pointFault, 0, len(seq))
	for _, ei := range seq {
		p, ok := e.points[ei]
		if !ok || p.Src == "" || len(e.prereqs[ei]) > 0 {
			e.mu.Unlock()
			return campaign.Unit{}, nil, false
		}
		fs = append(fs, pointFault{src: p.Src, dst: p.Dst, ei: ei, on: rules.OnResponse})
	}
	e.mu.Unlock()

	key := "combo-" + strings.Join(seq, "+")
	if e.builtCombo(key) {
		return campaign.Unit{}, nil, false
	}
	eis := append([]string(nil), seq...)
	code := e.o.ErrorCode
	deepest := fs[len(fs)-1]
	return campaign.Unit{
		Key:     key,
		Kind:    "explore-combo",
		Service: deepest.dst,
		Target:  strings.Join(seq, "+"),
		EIs:     eis,
		Build: func(pattern string) (core.Recipe, error) {
			rec := core.Recipe{Name: key, Pattern: pattern}
			for _, f := range fs {
				rec.Scenarios = append(rec.Scenarios, core.Abort{
					Src: f.src, Dst: f.dst, ErrorCode: code,
					Probability: 1, On: f.on, CallPath: f.ei,
				})
				rec.Checks = append(rec.Checks, expectFaultAt(f.src, f.dst, f.ei, pattern))
			}
			return rec, nil
		},
	}, fs, true
}

// builtCombo claims a combo key once per exploration: combos re-derive
// from the same observed paths every round, and ones already journalled
// (this session or a previous one) add nothing to the frontier.
func (e *explorer) builtCombo(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, done := e.entries[key]; done {
		return true
	}
	if e.combosBuilt == nil {
		e.combosBuilt = make(map[string]bool)
	}
	if e.combosBuilt[key] {
		return true
	}
	e.combosBuilt[key] = true
	return false
}

// expectFaultAt asserts that at least one reply on src->dst carried an
// injected fault at exactly the given execution index — the evidence that
// the point-pinned rule fired where it was aimed, not merely somewhere on
// the edge.
func expectFaultAt(src, dst, ei, pattern string) core.Check {
	name := fmt.Sprintf("FaultAt(%s)", ei)
	return core.ExpectCustom(name, func(c *checker.Checker) (bool, string, error) {
		rl, err := c.GetReplies(src, dst, pattern)
		if err != nil {
			return false, "", err
		}
		n := checker.CountFaultedAt(rl, ei)
		return n > 0, fmt.Sprintf("%d of %d replies faulted at %s", n, len(rl), ei), nil
	})
}
