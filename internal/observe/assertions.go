package observe

import (
	"fmt"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/eventlog"
	"gremlin/internal/stats"
)

// NumRequests is the online form of the checker's NumRequests/AtMostRequests
// (Table 3): it bounds how many requests src sends dst within a sliding
// window. Crossing the bound mid-run fires immediately instead of waiting
// for the batch check — the paper's bounded-retries and circuit-breaker
// patterns are exactly such upper bounds.
type NumRequests struct {
	f   filter
	w   window
	max int
	out bool
}

// NewNumRequests builds the evaluator: a violation fires when more than max
// matching requests arrive within window (0 = over the whole run).
func NewNumRequests(src, dst, idPattern string, win time.Duration, max int) (*NumRequests, error) {
	f, err := newFilter(src, dst, idPattern)
	if err != nil {
		return nil, err
	}
	if max < 0 {
		return nil, fmt.Errorf("observe: numRequests max %d < 0", max)
	}
	return &NumRequests{f: f, w: window{span: win}, max: max}, nil
}

func (a *NumRequests) Name() string { return "numRequests" }

func (a *NumRequests) Observe(rec eventlog.Record) *Violation {
	if a.out || !a.f.match(rec, eventlog.KindRequest) {
		return nil
	}
	a.w.slide(rec.Timestamp)
	if n := a.w.count(); n > a.max {
		a.out = true
		return &Violation{
			Assertion: a.Name(),
			Detail:    fmt.Sprintf("%d requests %s->%s exceed the bound of %d%s", n, orAny(a.f.src), orAny(a.f.dst), a.max, inWindow(a.w.span)),
			Record:    rec,
			Time:      rec.Timestamp,
		}
	}
	return nil
}

// CheckStatus is the online form of the checker's CheckStatus: it bounds
// how many replies carrying a given status src may see from dst. A status
// of -1 counts every failure reply (HTTP 4xx/5xx or a severed connection),
// matching checker.IsFailureStatus; 0 counts severed connections only.
type CheckStatus struct {
	f      filter
	w      window
	status int
	max    int
	out    bool
}

// NewCheckStatus builds the evaluator: a violation fires when more than max
// matching replies arrive within window (0 = whole run). max 0 means the
// first such reply violates.
func NewCheckStatus(src, dst, idPattern string, status int, win time.Duration, max int) (*CheckStatus, error) {
	f, err := newFilter(src, dst, idPattern)
	if err != nil {
		return nil, err
	}
	if max < 0 {
		return nil, fmt.Errorf("observe: checkStatus max %d < 0", max)
	}
	return &CheckStatus{f: f, w: window{span: win}, status: status, max: max}, nil
}

func (a *CheckStatus) Name() string { return "checkStatus" }

func (a *CheckStatus) counts(status int) bool {
	if a.status < 0 {
		return checker.IsFailureStatus(status)
	}
	return status == a.status
}

func (a *CheckStatus) Observe(rec eventlog.Record) *Violation {
	if a.out || !a.f.match(rec, eventlog.KindReply) || !a.counts(rec.Status) {
		return nil
	}
	a.w.slide(rec.Timestamp)
	if n := a.w.count(); n > a.max {
		a.out = true
		what := fmt.Sprintf("status-%d replies", a.status)
		if a.status < 0 {
			what = "failure replies"
		}
		return &Violation{
			Assertion: a.Name(),
			Detail:    fmt.Sprintf("%d %s %s->%s exceed the bound of %d%s", n, what, orAny(a.f.src), orAny(a.f.dst), a.max, inWindow(a.w.span)),
			Record:    rec,
			Time:      rec.Timestamp,
		}
	}
	return nil
}

// RequestRate is the online form of the checker's RequestRate: it bounds
// the request rate src sustains toward dst, measured over a sliding window.
type RequestRate struct {
	f         filter
	w         window
	maxPerSec float64
	out       bool
}

// NewRequestRate builds the evaluator: a violation fires when the rate of
// matching requests over the (required, positive) window exceeds maxPerSec.
// The window must fill past one record before a rate exists, so a single
// burst shorter than the window is judged against the whole window span —
// the conservative reading of "requests per second".
func NewRequestRate(src, dst, idPattern string, win time.Duration, maxPerSec float64) (*RequestRate, error) {
	f, err := newFilter(src, dst, idPattern)
	if err != nil {
		return nil, err
	}
	if win <= 0 {
		return nil, fmt.Errorf("observe: requestRate needs a positive window, got %v", win)
	}
	if maxPerSec <= 0 {
		return nil, fmt.Errorf("observe: requestRate needs a positive bound, got %v", maxPerSec)
	}
	return &RequestRate{f: f, w: window{span: win}, maxPerSec: maxPerSec}, nil
}

func (a *RequestRate) Name() string { return "requestRate" }

func (a *RequestRate) Observe(rec eventlog.Record) *Violation {
	if a.out || !a.f.match(rec, eventlog.KindRequest) {
		return nil
	}
	a.w.slide(rec.Timestamp)
	rate := float64(a.w.count()) / a.w.span.Seconds()
	if rate > a.maxPerSec {
		a.out = true
		return &Violation{
			Assertion: a.Name(),
			Detail:    fmt.Sprintf("%.1f req/s %s->%s exceeds the bound of %.1f req/s over %v", rate, orAny(a.f.src), orAny(a.f.dst), a.maxPerSec, a.w.span),
			Record:    rec,
			Time:      rec.Timestamp,
		}
	}
	return nil
}

// ReplyLatency is the online form of the checker's ReplyLatency statistics:
// it bounds a latency quantile of the replies src sees from dst, estimated
// incrementally by a streaming histogram over a sliding window. With
// withRule=false (the checker's untampered mode) Gremlin-synthesized
// replies are skipped and injected delays subtracted, so the bound judges
// the callee, not the injected fault.
type ReplyLatency struct {
	f        filter
	span     time.Duration
	quantile float64
	max      time.Duration
	withRule bool

	hist *stats.StreamingHistogram
	// samples mirrors the histogram's live window so eviction can Remove
	// the exact values that expired.
	samples []latSample
	head    int
	out     bool
}

type latSample struct {
	ts  time.Time
	sec float64
}

// NewReplyLatency builds the evaluator: a violation fires when the given
// quantile (0 < q <= 1; 1 = the max) of matching reply latencies within
// window (0 = whole run) exceeds max. withRule selects the checker's
// latency mode: true judges latencies as the caller saw them, injected
// delays included; false subtracts Gremlin's interference.
func NewReplyLatency(src, dst, idPattern string, win time.Duration, quantile float64, max time.Duration, withRule bool) (*ReplyLatency, error) {
	f, err := newFilter(src, dst, idPattern)
	if err != nil {
		return nil, err
	}
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("observe: replyLatency quantile %v outside (0,1]", quantile)
	}
	if max <= 0 {
		return nil, fmt.Errorf("observe: replyLatency needs a positive bound, got %v", max)
	}
	return &ReplyLatency{
		f: f, span: win, quantile: quantile, max: max, withRule: withRule,
		hist: stats.NewStreamingHistogram(),
	}, nil
}

func (a *ReplyLatency) Name() string { return "replyLatency" }

func (a *ReplyLatency) Observe(rec eventlog.Record) *Violation {
	if a.out || !a.f.match(rec, eventlog.KindReply) {
		return nil
	}
	var lat time.Duration
	if a.withRule {
		lat = rec.Latency()
	} else {
		if rec.GremlinGenerated {
			return nil
		}
		lat = rec.UntamperedLatency()
	}
	sec := lat.Seconds()

	// Evict expired samples (by the newest record's clock), then admit.
	if a.span > 0 {
		cutoff := rec.Timestamp.Add(-a.span)
		for a.head < len(a.samples) && !a.samples[a.head].ts.After(cutoff) {
			a.hist.Remove(a.samples[a.head].sec)
			a.head++
		}
		if a.head > 64 && a.head*2 > len(a.samples) {
			a.samples = append(a.samples[:0], a.samples[a.head:]...)
			a.head = 0
		}
	}
	a.samples = append(a.samples, latSample{ts: rec.Timestamp, sec: sec})
	a.hist.Observe(sec)

	q, err := a.hist.Quantile(a.quantile)
	if err != nil {
		return nil
	}
	if q > a.max.Seconds() {
		a.out = true
		return &Violation{
			Assertion: a.Name(),
			Detail: fmt.Sprintf("p%g reply latency %s->%s is %.1fms, exceeding the bound of %v%s",
				a.quantile*100, orAny(a.f.src), orAny(a.f.dst), q*1000, a.max, inWindow(a.span)),
			Record: rec,
			Time:   rec.Timestamp,
		}
	}
	return nil
}

func orAny(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

func inWindow(span time.Duration) string {
	if span <= 0 {
		return ""
	}
	return fmt.Sprintf(" in %v", span)
}
