// Package observe implements online assertion evaluation: the streaming
// counterpart to the batch Assertion Checker (internal/checker).
//
// The batch checker answers "did the run satisfy its assertions?" after the
// load finishes, from the complete event log. The evaluators here consume
// the live record feed (eventlog.Subscription / GET /v1/stream) and report
// violations while the run is still in progress, so a campaign can abort a
// failing experiment early and an operator can watch a recipe unfold.
//
// Only monotone violations are decidable online: an upper bound (at most N
// requests, failures, a latency ceiling) that a stream prefix exceeds stays
// exceeded no matter what arrives later, so firing on the prefix is sound.
// Lower bounds ("at least N requests succeeded") are only decidable once
// the run ends and remain the batch checker's job. Every evaluator in this
// package is an upper bound for exactly that reason.
package observe

import (
	"fmt"
	"sync"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/pattern"
)

// Violation reports one assertion failing against the live feed.
type Violation struct {
	// Assertion names the evaluator that fired, e.g. "numRequests".
	Assertion string `json:"assertion"`
	// Detail is a human-readable account of the bound and the observed value.
	Detail string `json:"detail"`
	// Record is the record whose arrival crossed the bound.
	Record eventlog.Record `json:"record"`
	// Time is the violating record's timestamp.
	Time time.Time `json:"time"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Assertion, v.Detail)
}

// Assertion is one online evaluator. Observe consumes the next record from
// the feed and returns a non-nil Violation the first time the assertion's
// bound is crossed; afterwards it stays silent (a violated assertion stays
// violated). Implementations are not safe for concurrent use — a Monitor
// serializes them.
type Assertion interface {
	Name() string
	Observe(rec eventlog.Record) *Violation
}

// filter is the record selector shared by all evaluators: source,
// destination, and request-ID pattern, any of which may be empty.
type filter struct {
	src, dst string
	pat      pattern.Pattern
}

func newFilter(src, dst, idPattern string) (filter, error) {
	pat, err := pattern.Compile(idPattern)
	if err != nil {
		return filter{}, fmt.Errorf("observe: bad pattern: %w", err)
	}
	return filter{src: src, dst: dst, pat: pat}, nil
}

func (f filter) match(r eventlog.Record, kind eventlog.Kind) bool {
	if kind != "" && r.Kind != kind {
		return false
	}
	if f.src != "" && r.Src != f.src {
		return false
	}
	if f.dst != "" && r.Dst != f.dst {
		return false
	}
	return f.pat.MatchAll() || f.pat.Match(r.RequestID)
}

// window is a sliding time window of record timestamps. Eviction is by the
// newest record's clock, not wall time, so evaluation is deterministic and
// replayable.
type window struct {
	span  time.Duration // 0 = unbounded (whole run)
	times []time.Time
	head  int
}

// slide admits ts and evicts entries older than span before it, returning
// the evicted timestamps (valid until the next call).
func (w *window) slide(ts time.Time) []time.Time {
	evictedFrom := w.head
	if w.span > 0 {
		cutoff := ts.Add(-w.span)
		for w.head < len(w.times) && !w.times[w.head].After(cutoff) {
			w.head++
		}
	}
	evicted := w.times[evictedFrom:w.head]
	// Compact once the dead prefix dominates, keeping memory proportional
	// to the live window.
	if w.head > 64 && w.head*2 > len(w.times) {
		w.times = append(w.times[:0], w.times[w.head:]...)
		w.head = 0
	}
	w.times = append(w.times, ts)
	return evicted
}

func (w *window) count() int { return len(w.times) - w.head }

// Monitor runs a set of assertions against a record feed, collecting
// violations and invoking an optional callback as each fires. It is safe
// for concurrent use.
type Monitor struct {
	mu          sync.Mutex
	assertions  []Assertion
	onViolation func(Violation)
	violations  []Violation
	observed    int64
}

// NewMonitor creates a monitor over the given assertions. onViolation, if
// non-nil, is called synchronously (under the monitor's lock) each time an
// assertion first fires — keep it fast; campaigns use it to cancel load.
func NewMonitor(assertions []Assertion, onViolation func(Violation)) *Monitor {
	return &Monitor{assertions: assertions, onViolation: onViolation}
}

// Observe feeds one record to every assertion.
func (m *Monitor) Observe(rec eventlog.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observed++
	for _, a := range m.assertions {
		if v := a.Observe(rec); v != nil {
			m.violations = append(m.violations, *v)
			if m.onViolation != nil {
				m.onViolation(*v)
			}
		}
	}
}

// Violated reports whether any assertion has fired.
func (m *Monitor) Violated() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.violations) > 0
}

// FirstViolation returns the earliest violation, if any.
func (m *Monitor) FirstViolation() (Violation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.violations) == 0 {
		return Violation{}, false
	}
	return m.violations[0], true
}

// Violations returns a copy of all violations so far, in firing order.
func (m *Monitor) Violations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

// Observed reports how many records the monitor has consumed.
func (m *Monitor) Observed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observed
}
