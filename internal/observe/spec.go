package observe

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Spec is the JSON form of one online assertion, as consumed by
// gremlin-watch's -assert file. Example:
//
//	[
//	  {"type": "checkStatus", "src": "gateway", "dst": "payments",
//	   "status": -1, "max": 0},
//	  {"type": "replyLatency", "src": "gateway", "dst": "payments",
//	   "quantile": 0.99, "maxLatencyMillis": 250, "windowMillis": 10000}
//	]
type Spec struct {
	// Type selects the evaluator: "numRequests", "checkStatus",
	// "requestRate", or "replyLatency".
	Type string `json:"type"`

	// Src, Dst, and Pattern filter the records the evaluator sees (empty
	// matches anything; Pattern is the shared request-ID glob/"re:" form).
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Pattern string `json:"pattern,omitempty"`

	// WindowMillis is the sliding-window span (0 = whole run; requestRate
	// requires it).
	WindowMillis float64 `json:"windowMillis,omitempty"`

	// Max is the bound: a request count for numRequests, an occurrence
	// count for checkStatus, requests/second for requestRate.
	Max float64 `json:"max,omitempty"`

	// Status is checkStatus's reply status to count (-1 = any failure,
	// 0 = severed connections).
	Status int `json:"status,omitempty"`

	// Quantile and MaxLatencyMillis configure replyLatency: the quantile
	// (0 < q <= 1; defaults to 1, the max) and its ceiling.
	Quantile         float64 `json:"quantile,omitempty"`
	MaxLatencyMillis float64 `json:"maxLatencyMillis,omitempty"`

	// WithRule selects the checker's latency mode for replyLatency: true
	// judges caller-observed latencies, injected delays included.
	WithRule bool `json:"withRule,omitempty"`
}

// Build constructs the evaluator a spec describes.
func Build(s Spec) (Assertion, error) {
	win := time.Duration(s.WindowMillis * float64(time.Millisecond))
	switch s.Type {
	case "numRequests":
		return NewNumRequests(s.Src, s.Dst, s.Pattern, win, int(s.Max))
	case "checkStatus":
		return NewCheckStatus(s.Src, s.Dst, s.Pattern, s.Status, win, int(s.Max))
	case "requestRate":
		return NewRequestRate(s.Src, s.Dst, s.Pattern, win, s.Max)
	case "replyLatency":
		q := s.Quantile
		if q == 0 {
			q = 1
		}
		max := time.Duration(s.MaxLatencyMillis * float64(time.Millisecond))
		return NewReplyLatency(s.Src, s.Dst, s.Pattern, win, q, max, s.WithRule)
	default:
		return nil, fmt.Errorf("observe: unknown assertion type %q", s.Type)
	}
}

// LoadSpecs reads a JSON array of specs and builds each.
func LoadSpecs(r io.Reader) ([]Assertion, error) {
	var specs []Spec
	if err := json.NewDecoder(r).Decode(&specs); err != nil {
		return nil, fmt.Errorf("observe: decode assertion specs: %w", err)
	}
	out := make([]Assertion, 0, len(specs))
	for i, s := range specs {
		a, err := Build(s)
		if err != nil {
			return nil, fmt.Errorf("observe: spec %d: %w", i, err)
		}
		out = append(out, a)
	}
	return out, nil
}
