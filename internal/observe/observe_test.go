package observe

import (
	"context"
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func req(id string, at time.Duration) eventlog.Record {
	return eventlog.Record{
		RequestID: id, Src: "a", Dst: "b",
		Kind: eventlog.KindRequest, Timestamp: t0.Add(at),
	}
}

func reply(id string, at time.Duration, status int, latencyMillis float64) eventlog.Record {
	return eventlog.Record{
		RequestID: id, Src: "a", Dst: "b",
		Kind: eventlog.KindReply, Timestamp: t0.Add(at),
		Status: status, LatencyMillis: latencyMillis,
	}
}

func TestNumRequestsWindowBound(t *testing.T) {
	a, err := NewNumRequests("a", "b", "", time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three requests inside one second cross the bound; the first two don't.
	if v := a.Observe(req("r1", 0)); v != nil {
		t.Fatalf("violation after 1 request: %v", v)
	}
	if v := a.Observe(req("r2", 100*time.Millisecond)); v != nil {
		t.Fatalf("violation after 2 requests: %v", v)
	}
	v := a.Observe(req("r3", 200*time.Millisecond))
	if v == nil {
		t.Fatal("3 requests in 1s did not violate max=2")
	}
	if v.Assertion != "numRequests" || v.Record.RequestID != "r3" {
		t.Fatalf("violation = %+v", v)
	}
	// Fired assertions stay silent.
	if v := a.Observe(req("r4", 300*time.Millisecond)); v != nil {
		t.Fatal("violated assertion fired twice")
	}
}

func TestNumRequestsWindowSlides(t *testing.T) {
	a, err := NewNumRequests("a", "b", "", time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two per window, forever: never violates because old requests expire.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 2 * time.Second
		if v := a.Observe(req("r", at)); v != nil {
			t.Fatalf("violation at step %d: %v", i, v)
		}
		if v := a.Observe(req("r", at+100*time.Millisecond)); v != nil {
			t.Fatalf("violation at step %d: %v", i, v)
		}
	}
}

func TestNumRequestsIgnoresNonMatching(t *testing.T) {
	a, err := NewNumRequests("a", "b", "camp-1-*", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := req("other", 0)
	if v := a.Observe(other); v != nil {
		t.Fatal("non-matching ID counted")
	}
	rep := reply("camp-1-x", 0, 200, 1)
	if v := a.Observe(rep); v != nil {
		t.Fatal("reply counted as request")
	}
	wrongDst := req("camp-1-x", 0)
	wrongDst.Dst = "c"
	if v := a.Observe(wrongDst); v != nil {
		t.Fatal("wrong destination counted")
	}
	if v := a.Observe(req("camp-1-x", 0)); v == nil {
		t.Fatal("matching request did not violate max=0")
	}
}

func TestCheckStatusAnyFailure(t *testing.T) {
	a, err := NewCheckStatus("a", "b", "", -1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Observe(reply("r1", 0, 200, 1)); v != nil {
		t.Fatal("success reply counted as failure")
	}
	if v := a.Observe(reply("r2", 0, 503, 1)); v != nil {
		t.Fatal("first failure violated max=1")
	}
	v := a.Observe(reply("r3", 0, 0, 1)) // severed connection is a failure too
	if v == nil {
		t.Fatal("second failure did not violate max=1")
	}
	if !strings.Contains(v.Detail, "failure replies") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestCheckStatusExactCode(t *testing.T) {
	a, err := NewCheckStatus("", "", "", 503, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Observe(reply("r1", 0, 500, 1)); v != nil {
		t.Fatal("500 counted as 503")
	}
	if v := a.Observe(reply("r2", 0, 503, 1)); v == nil {
		t.Fatal("first 503 did not violate max=0")
	}
}

func TestRequestRateBound(t *testing.T) {
	a, err := NewRequestRate("a", "b", "", time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 requests over a second is exactly the bound: no violation.
	var v *Violation
	for i := 0; i < 5; i++ {
		v = a.Observe(req("r", time.Duration(i)*200*time.Millisecond))
		if v != nil {
			t.Fatalf("violation at request %d: %v", i, v)
		}
	}
	// The sixth in the same window pushes the rate to 6/s.
	if v = a.Observe(req("r", 900*time.Millisecond)); v == nil {
		t.Fatal("6 req/s did not violate the 5 req/s bound")
	}
}

func TestRequestRateRejectsBadConfig(t *testing.T) {
	if _, err := NewRequestRate("a", "b", "", 0, 5); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewRequestRate("a", "b", "", time.Second, 0); err == nil {
		t.Error("zero bound accepted")
	}
}

func TestReplyLatencyQuantileBound(t *testing.T) {
	a, err := NewReplyLatency("a", "b", "", 0, 0.5, 100*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fast replies keep the median low.
	for i := 0; i < 10; i++ {
		if v := a.Observe(reply("r", time.Duration(i)*time.Millisecond, 200, 10)); v != nil {
			t.Fatalf("violation on fast replies: %v", v)
		}
	}
	// Slow replies drag the median past 100 ms.
	var v *Violation
	for i := 0; i < 20 && v == nil; i++ {
		v = a.Observe(reply("r", time.Duration(10+i)*time.Millisecond, 200, 500))
	}
	if v == nil {
		t.Fatal("median of slow replies did not violate 100ms bound")
	}
	if !strings.Contains(v.Detail, "p50") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestReplyLatencyWindowForgets(t *testing.T) {
	a, err := NewReplyLatency("a", "b", "", time.Second, 1, 100*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	// A slow reply arrives but stays under the bound's attention only while
	// in-window: after it expires, fast replies must not violate.
	if v := a.Observe(reply("r", 0, 200, 90)); v != nil {
		t.Fatalf("90ms violated a 100ms bound: %v", v)
	}
	for i := 0; i < 50; i++ {
		at := 2*time.Second + time.Duration(i)*10*time.Millisecond
		if v := a.Observe(reply("r", at, 200, 5)); v != nil {
			t.Fatalf("violation after slow reply expired: %v", v)
		}
	}
}

func TestReplyLatencyUntamperedModeSkipsGremlin(t *testing.T) {
	a, err := NewReplyLatency("a", "b", "", 0, 1, 100*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	// A Gremlin-synthesized abort reply is not the callee's latency.
	synth := reply("r1", 0, 503, 5000)
	synth.GremlinGenerated = true
	if v := a.Observe(synth); v != nil {
		t.Fatalf("synthesized reply judged: %v", v)
	}
	// An injected delay is subtracted before judging.
	delayed := reply("r2", 0, 200, 550)
	delayed.InjectedDelayMillis = 500
	if v := a.Observe(delayed); v != nil {
		t.Fatalf("injected delay judged against the callee: %v", v)
	}
	// The same latency with no injected delay violates.
	if v := a.Observe(reply("r3", 0, 200, 550)); v == nil {
		t.Fatal("genuine 550ms latency did not violate 100ms bound")
	}
}

func TestMonitorCollectsAndCallsBack(t *testing.T) {
	cs, err := NewCheckStatus("", "", "", -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := NewNumRequests("", "", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	m := NewMonitor([]Assertion{cs, nr}, func(v Violation) { fired = append(fired, v.Assertion) })

	if m.Violated() {
		t.Fatal("fresh monitor violated")
	}
	m.Observe(reply("r1", 0, 503, 1)) // fires checkStatus
	m.Observe(req("r2", 0))           // fires numRequests
	m.Observe(reply("r3", 0, 503, 1)) // both already fired: silent

	vs := m.Violations()
	if len(vs) != 2 || vs[0].Assertion != "checkStatus" || vs[1].Assertion != "numRequests" {
		t.Fatalf("violations = %+v", vs)
	}
	if first, ok := m.FirstViolation(); !ok || first.Assertion != "checkStatus" {
		t.Fatalf("first violation = %+v, ok=%v", first, ok)
	}
	if len(fired) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(fired))
	}
	if m.Observed() != 3 {
		t.Fatalf("observed = %d, want 3", m.Observed())
	}
}

func TestStoreFeedDeliversAndCancels(t *testing.T) {
	store := eventlog.NewStore()
	cs, err := NewCheckStatus("", "", "", -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor([]Assertion{cs}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- Watch(ctx, StoreFeed(store), "live-*", m, true) }()

	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("feed never subscribed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	good := reply("live-1", 0, 200, 1)
	bad := reply("live-2", time.Millisecond, 503, 1)
	if err := store.Log(good, bad); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch returned %v, want nil on stop-on-violation", err)
		}
	case <-ctx.Done():
		t.Fatal("watch did not stop on violation")
	}
	if !m.Violated() {
		t.Fatal("monitor saw no violation")
	}
}

func TestWatchReturnsContextErrWithoutViolation(t *testing.T) {
	store := eventlog.NewStore()
	m := NewMonitor(nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Watch(ctx, StoreFeed(store), "", m, true) }()
	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("feed never subscribed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("watch err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not return on cancel")
	}
}

func TestSpecBuildAndLoad(t *testing.T) {
	specJSON := `[
		{"type": "checkStatus", "src": "a", "dst": "b", "status": -1, "max": 0},
		{"type": "numRequests", "max": 100, "windowMillis": 1000},
		{"type": "requestRate", "max": 50, "windowMillis": 1000},
		{"type": "replyLatency", "quantile": 0.99, "maxLatencyMillis": 250}
	]`
	as, err := LoadSpecs(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("built %d assertions, want 4", len(as))
	}
	wantNames := []string{"checkStatus", "numRequests", "requestRate", "replyLatency"}
	for i, a := range as {
		if a.Name() != wantNames[i] {
			t.Errorf("assertion %d = %q, want %q", i, a.Name(), wantNames[i])
		}
	}

	if _, err := Build(Spec{Type: "nope"}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Build(Spec{Type: "requestRate", Max: 5}); err == nil {
		t.Error("requestRate without window accepted")
	}
	if _, err := LoadSpecs(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestReplyLatencyDefaultQuantileIsMax(t *testing.T) {
	a, err := Build(Spec{Type: "replyLatency", MaxLatencyMillis: 100})
	if err != nil {
		t.Fatal(err)
	}
	rl := a.(*ReplyLatency)
	if rl.quantile != 1 {
		t.Fatalf("default quantile = %v, want 1", rl.quantile)
	}
}
