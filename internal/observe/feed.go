package observe

import (
	"context"
	"errors"

	"gremlin/internal/eventlog"
)

// Feed delivers live records whose request ID matches pattern to fn until
// ctx is cancelled (returning ctx.Err()) or the feed breaks (returning the
// underlying error). The two implementations mirror the two ways a checker
// reads the store: in-process (StoreFeed) and over HTTP (ClientFeed), so a
// Monitor works identically against both.
type Feed func(ctx context.Context, pattern string, fn func(eventlog.Record)) error

// Subscribable is the live-subscription surface of an event store; both
// *eventlog.Store and *eventlog.ShardedStore satisfy it.
type Subscribable interface {
	SubscribeBuffer(idPattern string, buffer int) (eventlog.Subscriber, error)
}

// StoreFeed taps an in-process store's subscription fan-out.
func StoreFeed(s Subscribable) Feed {
	return func(ctx context.Context, pattern string, fn func(eventlog.Record)) error {
		sub, err := s.SubscribeBuffer(pattern, eventlog.DefaultSubscriberBuffer)
		if err != nil {
			return err
		}
		defer sub.Close()
		for {
			select {
			case rec, ok := <-sub.C():
				if !ok {
					return errors.New("observe: subscription closed")
				}
				fn(rec)
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// ClientFeed tails a remote store server's SSE stream.
func ClientFeed(c *eventlog.Client) Feed {
	return func(ctx context.Context, pattern string, fn func(eventlog.Record)) error {
		return c.Stream(ctx, pattern, func(rec eventlog.Record) error {
			fn(rec)
			return nil
		})
	}
}

// Watch runs a feed into a monitor until ctx is cancelled or, when
// stopOnViolation is set, the monitor records its first violation. It
// returns the feed's error (ctx.Err() on cancellation, nil on a
// stop-on-violation exit).
func Watch(ctx context.Context, feed Feed, pattern string, m *Monitor, stopOnViolation bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopped := false
	err := feed(ctx, pattern, func(rec eventlog.Record) {
		m.Observe(rec)
		if stopOnViolation && m.Violated() {
			stopped = true
			cancel()
		}
	})
	if stopped && errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
