// Package streamproxy implements Gremlin's L4 data plane: a TCP stream
// relay that sits between a downstream service and one of its non-HTTP
// dependencies (database, cache, message broker) and injects
// connection-shaped faults the HTTP proxy cannot express.
//
// Each accepted connection is relayed byte-for-byte to an upstream
// target. At accept time the relay consults the agent's rule matcher
// once per direction (rules.OnRequest = downstream→upstream,
// rules.OnResponse = upstream→downstream) with a freshly minted
// connection ID, so the same versioned rule sets that program the HTTP
// plane drive stream faults too:
//
//   - Abort (connect-refuse): reset the downstream socket before dialing.
//   - Delay (connect-delay): sleep before dialing upstream.
//   - Sever: terminate the connection mid-stream (RST or FIN), optionally
//     after AbortAfterBytes have been relayed in the rule's direction.
//   - HalfOpen: stop relaying one direction while keeping both sockets
//     open — the peer sees silence, not an error.
//   - Throttle: token-bucket pacing of one direction to RateBytesPerSec.
//   - Jitter: a fixed sleep before each relayed chunk.
//
// Every connection emits a paired conn-open/conn-close record into the
// event log (shared RequestID = connection ID) carrying the bytes moved
// each way, the connection's duration, and the fault that fired, so the
// checker, tracing, and campaign scorecards observe L4 faults alongside
// HTTP ones.
package streamproxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
)

// copyBufSize is the per-direction relay buffer. 32 KiB matches the
// HTTP proxy's streaming fast path.
const copyBufSize = 32 * 1024

// DefaultDialTimeout bounds the upstream dial when Config.DialTimeout
// is zero.
const DefaultDialTimeout = 5 * time.Second

// Config describes one L4 relay: a listen address fronting an upstream
// dependency on behalf of a downstream service.
type Config struct {
	// Src is the logical name of the downstream service whose outbound
	// connections this relay carries (the rule's Src).
	Src string
	// Dst is the logical name of the upstream dependency (the rule's
	// Dst).
	Dst string
	// ListenAddr is the TCP address the relay binds ("127.0.0.1:0" for
	// an ephemeral port).
	ListenAddr string
	// Targets are the upstream addresses, dialed round-robin per
	// connection.
	Targets []string
	// Matcher supplies fault decisions; typically the owning agent's
	// matcher, shared with the HTTP plane.
	Matcher *rules.Matcher
	// Log receives the conn-open/conn-close records. Nil drops them.
	Log func(eventlog.Record)
	// ConnID mints connection IDs (matched against rule patterns and
	// used as the records' RequestID). Nil uses an internal counter.
	ConnID func() string
	// Agent tags emitted records with the reporting agent instance.
	Agent string
	// DialTimeout bounds the upstream dial; zero means
	// DefaultDialTimeout.
	DialTimeout time.Duration
}

func (c Config) validate() error {
	if c.Src == "" {
		return errors.New("streamproxy: config needs a Src service")
	}
	if c.Dst == "" {
		return errors.New("streamproxy: config needs a Dst service")
	}
	if len(c.Targets) == 0 {
		return fmt.Errorf("streamproxy: relay %s->%s has no targets", c.Src, c.Dst)
	}
	if c.Matcher == nil {
		return errors.New("streamproxy: config needs a rule matcher")
	}
	return nil
}

// Stats is a snapshot of one relay's lifetime counters. Fault counters
// count actuated faults (after probability sampling), once per
// connection and direction.
type Stats struct {
	Conns          int64 `json:"conns"`
	Open           int64 `json:"open"`
	BytesUp        int64 `json:"bytesUp"`
	BytesDown      int64 `json:"bytesDown"`
	Severed        int64 `json:"severed"`
	HalfOpened     int64 `json:"halfOpened"`
	Throttled      int64 `json:"throttled"`
	Jittered       int64 `json:"jittered"`
	Refused        int64 `json:"refused"`
	ConnectDelayed int64 `json:"connectDelayed"`
}

// Add accumulates other into s, for aggregating an agent's relays.
func (s *Stats) Add(other Stats) {
	s.Conns += other.Conns
	s.Open += other.Open
	s.BytesUp += other.BytesUp
	s.BytesDown += other.BytesDown
	s.Severed += other.Severed
	s.HalfOpened += other.HalfOpened
	s.Throttled += other.Throttled
	s.Jittered += other.Jittered
	s.Refused += other.Refused
	s.ConnectDelayed += other.ConnectDelayed
}

// Faults is the total number of actuated stream faults.
func (s Stats) Faults() int64 {
	return s.Severed + s.HalfOpened + s.Throttled + s.Jittered + s.Refused + s.ConnectDelayed
}

// Relay is one listening L4 stream relay. Create with New, serve with
// Start, stop with Close. Safe for concurrent use; rule swaps through
// the shared matcher take effect for subsequently accepted connections.
type Relay struct {
	cfg Config
	ln  net.Listener

	nextTarget atomic.Uint64
	connSeq    atomic.Uint64

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool

	wg sync.WaitGroup

	conns, open          atomic.Int64
	bytesUp, bytesDown   atomic.Int64
	severed, halfOpened  atomic.Int64
	throttled, jittered  atomic.Int64
	refused, connDelayed atomic.Int64
}

// New validates the config and binds the listen address. The relay does
// not accept connections until Start.
func New(cfg Config) (*Relay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("streamproxy: listen %s: %w", cfg.ListenAddr, err)
	}
	return &Relay{cfg: cfg, ln: ln, sessions: make(map[*session]struct{})}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Src and Dst return the logical edge the relay carries.
func (r *Relay) Src() string { return r.cfg.Src }

// Dst returns the logical upstream service name.
func (r *Relay) Dst() string { return r.cfg.Dst }

// Start begins accepting connections in a background goroutine.
func (r *Relay) Start() {
	r.wg.Add(1)
	go r.acceptLoop()
}

// Close stops the listener, tears down every live session (emitting
// their conn-close records), and waits for all connection goroutines to
// finish.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return nil
	}
	r.closed = true
	live := make([]*session, 0, len(r.sessions))
	for s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()

	err := r.ln.Close()
	for _, s := range live {
		s.teardown(rules.SeverFIN)
	}
	r.wg.Wait()
	return err
}

// Stats returns a snapshot of the relay's counters.
func (r *Relay) Stats() Stats {
	return Stats{
		Conns:          r.conns.Load(),
		Open:           r.open.Load(),
		BytesUp:        r.bytesUp.Load(),
		BytesDown:      r.bytesDown.Load(),
		Severed:        r.severed.Load(),
		HalfOpened:     r.halfOpened.Load(),
		Throttled:      r.throttled.Load(),
		Jittered:       r.jittered.Load(),
		Refused:        r.refused.Load(),
		ConnectDelayed: r.connDelayed.Load(),
	}
}

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go r.handle(conn)
	}
}

func (r *Relay) log(rec eventlog.Record) {
	if r.cfg.Log == nil {
		return
	}
	rec.Agent = r.cfg.Agent
	r.cfg.Log(rec)
}

func (r *Relay) mintID() string {
	if r.cfg.ConnID != nil {
		return r.cfg.ConnID()
	}
	return fmt.Sprintf("l4-conn-%d", r.connSeq.Add(1))
}

func (r *Relay) dial() (net.Conn, error) {
	target := r.cfg.Targets[r.nextTarget.Add(1)%uint64(len(r.cfg.Targets))]
	return net.DialTimeout("tcp", target, r.cfg.DialTimeout)
}

// streamFault filters a decision down to the mid-stream actions; the
// connect-phase ones (abort, delay) are actuated by handle before the
// pumps start.
func streamFault(d rules.Decision) rules.Decision {
	if !d.Fired {
		return rules.Decision{}
	}
	switch d.Rule.Action {
	case rules.ActionSever, rules.ActionHalfOpen, rules.ActionThrottle, rules.ActionJitter:
		return d
	}
	return rules.Decision{}
}

// handle runs one relayed connection end to end and always emits the
// paired conn-open/conn-close records, torn connections included.
func (r *Relay) handle(down net.Conn) {
	defer r.wg.Done()
	connID := r.mintID()
	r.conns.Add(1)
	r.open.Add(1)
	opened := time.Now()

	base := rules.Message{Src: r.cfg.Src, Dst: r.cfg.Dst, RequestID: connID, Layer: rules.LayerL4}
	upMsg, downMsg := base, base
	upMsg.Type = rules.OnRequest
	downMsg.Type = rules.OnResponse
	upDec := r.cfg.Matcher.Decide(upMsg)
	downDec := r.cfg.Matcher.Decide(downMsg)

	r.log(eventlog.Record{
		Timestamp: opened,
		RequestID: connID,
		Src:       r.cfg.Src,
		Dst:       r.cfg.Dst,
		Kind:      eventlog.KindConnOpen,
	})
	closeRec := eventlog.Record{
		RequestID: connID,
		Src:       r.cfg.Src,
		Dst:       r.cfg.Dst,
		Kind:      eventlog.KindConnClose,
	}
	// emitClose is called exactly once on every path out of handle — the
	// close record is never skipped, torn connections included.
	emitClose := func() {
		closeRec.Timestamp = time.Now()
		closeRec.LatencyMillis = float64(time.Since(opened)) / float64(time.Millisecond)
		r.open.Add(-1)
		r.log(closeRec)
	}

	// Connect-phase faults ride the downstream→upstream decision: on the
	// L4 plane Abort means connect-refuse and Delay means connect-delay.
	if upDec.Fired {
		switch upDec.Rule.Action {
		case rules.ActionAbort:
			r.refused.Add(1)
			abortConn(down)
			closeRec.FaultAction = string(rules.ActionAbort)
			closeRec.FaultRuleID = upDec.Rule.ID
			closeRec.GremlinGenerated = true
			emitClose()
			return
		case rules.ActionDelay:
			r.connDelayed.Add(1)
			closeRec.FaultAction = string(rules.ActionDelay)
			closeRec.FaultRuleID = upDec.Rule.ID
			closeRec.InjectedDelayMillis = float64(upDec.Rule.DelayMillis)
			closeRec.GremlinGenerated = true
			time.Sleep(upDec.Rule.Delay())
		}
	}

	up, err := r.dial()
	if err != nil {
		down.Close()
		emitClose()
		return
	}

	s := &session{relay: r, down: down, up: up, done: make(chan struct{})}
	if !r.register(s) {
		s.teardown(rules.SeverFIN)
		emitClose()
		return
	}

	results := make(chan pumpResult, 2)
	go func() {
		res := s.pump(down, up, streamFault(upDec), &r.bytesUp)
		res.dir = rules.OnRequest
		results <- res
	}()
	go func() {
		res := s.pump(up, down, streamFault(downDec), &r.bytesDown)
		res.dir = rules.OnResponse
		results <- res
	}()
	first := <-results
	second := <-results

	// Record the most telling fault: a terminal stream fault beats a
	// pacing one, which beats the connect-delay already stamped above.
	for _, res := range []pumpResult{first, second} {
		if res.action == "" {
			continue
		}
		if closeRec.FaultAction == "" || closeRec.FaultAction == string(rules.ActionDelay) ||
			res.action == rules.ActionSever || res.action == rules.ActionHalfOpen {
			closeRec.FaultAction = string(res.action)
			closeRec.FaultRuleID = res.ruleID
			closeRec.GremlinGenerated = true
		}
		if res.action == rules.ActionJitter {
			closeRec.InjectedDelayMillis += res.injectedMillis
		}
	}
	if first.dir == rules.OnRequest {
		closeRec.BytesUp, closeRec.BytesDown = first.bytes, second.bytes
	} else {
		closeRec.BytesUp, closeRec.BytesDown = second.bytes, first.bytes
	}

	if first.halfOpen && second.halfOpen {
		// Both directions went dark but both sockets must stay alive: the
		// session lingers until the relay shuts down (or a peer error
		// surfaces through teardown). The close record is emitted then.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			<-s.done
			emitClose()
			r.unregister(s)
		}()
		return
	}
	// Every other combination means the connection is over: both
	// directions finished (EOF, error, or sever), or one went half-open
	// and the other's EOF/error says the peer is done — the half-open
	// hold has been delivered for the connection's whole useful life.
	s.teardown(rules.SeverFIN)
	emitClose()
	r.unregister(s)
}

func (r *Relay) register(s *session) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.sessions[s] = struct{}{}
	return true
}

func (r *Relay) unregister(s *session) {
	r.mu.Lock()
	delete(r.sessions, s)
	r.mu.Unlock()
}

// session is one live relayed connection: the downstream and upstream
// sockets plus the teardown latch shared by both pump goroutines.
type session struct {
	relay *Relay
	down  net.Conn
	up    net.Conn

	once sync.Once
	done chan struct{}
}

// teardown closes both sockets exactly once. mode rules.SeverRST resets
// the sockets (SO_LINGER 0) for an abrupt kill; anything else closes
// them cleanly (FIN).
func (s *session) teardown(mode string) {
	s.once.Do(func() {
		if mode == rules.SeverRST {
			abortConn(s.down)
			abortConn(s.up)
		} else {
			s.down.Close()
			s.up.Close()
		}
		close(s.done)
	})
}

// pumpResult reports one direction's outcome.
type pumpResult struct {
	dir            rules.MessageType
	bytes          int64
	action         rules.Action // actuated stream fault, "" if none
	ruleID         string
	injectedMillis float64
	halfOpen       bool
}

// pump relays src→dst until EOF, error, or a fault terminates the
// direction. total accumulates the relay-wide byte counter for this
// direction.
func (s *session) pump(src, dst net.Conn, dec rules.Decision, total *atomic.Int64) pumpResult {
	var res pumpResult
	var (
		severAfter int64 = -1
		severMode  string
		halfAfter  int64 = -1
		tb         *bucket
		jitter     time.Duration
	)
	if dec.Fired {
		rule := dec.Rule
		switch rule.Action {
		case rules.ActionSever:
			severAfter, severMode = rule.AbortAfterBytes, rule.EffectiveSeverMode()
		case rules.ActionHalfOpen:
			halfAfter = rule.AbortAfterBytes
		case rules.ActionThrottle:
			tb = newBucket(rule.RateBytesPerSec)
		case rules.ActionJitter:
			jitter = rule.Delay()
		}
	}
	actuate := func(a rules.Action, counter *atomic.Int64) {
		if res.action == "" {
			res.action, res.ruleID = a, dec.Rule.ID
			counter.Add(1)
		}
	}

	buf := make([]byte, copyBufSize)
	for {
		if halfAfter >= 0 && res.bytes >= halfAfter {
			actuate(rules.ActionHalfOpen, &s.relay.halfOpened)
			res.halfOpen = true
			return res
		}
		if severAfter >= 0 && res.bytes >= severAfter {
			actuate(rules.ActionSever, &s.relay.severed)
			s.teardown(severMode)
			return res
		}
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			// Clip at a pending sever/half-open threshold so the logged
			// byte counts are exact; the remainder is dropped because the
			// direction dies on the next loop iteration anyway.
			if severAfter >= 0 && res.bytes+int64(n) > severAfter {
				chunk = buf[:severAfter-res.bytes]
			} else if halfAfter >= 0 && res.bytes+int64(n) > halfAfter {
				chunk = buf[:halfAfter-res.bytes]
			}
			if jitter > 0 {
				actuate(rules.ActionJitter, &s.relay.jittered)
				if !s.sleep(jitter) {
					return res
				}
				res.injectedMillis += float64(jitter) / float64(time.Millisecond)
			}
			if tb != nil {
				actuate(rules.ActionThrottle, &s.relay.throttled)
				if !tb.wait(len(chunk), s.done) {
					return res
				}
			}
			if len(chunk) > 0 {
				if _, werr := dst.Write(chunk); werr != nil {
					s.teardown(rules.SeverFIN)
					return res
				}
				res.bytes += int64(len(chunk))
				total.Add(int64(len(chunk)))
			}
		}
		if err != nil {
			if err == io.EOF {
				// Clean half-close: propagate the FIN and let the other
				// direction keep flowing.
				closeWrite(dst)
			} else {
				s.teardown(rules.SeverFIN)
			}
			return res
		}
	}
}

// sleep pauses for d unless the session is torn down first.
func (s *session) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

// abortConn resets a TCP connection (SO_LINGER 0 turns Close into RST);
// non-TCP conns fall back to a plain close.
func abortConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// closeWrite half-closes the write side when the transport supports it.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}
