package streamproxy

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
)

// echoServer accepts connections and echoes everything back until the
// peer closes. Returned closer stops it.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// recordSink collects emitted records thread-safely.
type recordSink struct {
	mu   sync.Mutex
	recs []eventlog.Record
}

func (s *recordSink) log(r eventlog.Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

func (s *recordSink) byKind(k eventlog.Kind) []eventlog.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []eventlog.Record
	for _, r := range s.recs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

func newRelay(t *testing.T, m *rules.Matcher, sink *recordSink, upstream string) *Relay {
	t.Helper()
	r, err := New(Config{
		Src:        "client",
		Dst:        "db",
		ListenAddr: "127.0.0.1:0",
		Targets:    []string{upstream},
		Matcher:    m,
		Log:        sink.log,
		Agent:      "client-agent",
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() { r.Close() })
	return r
}

func l4Rule(id string, action rules.Action) rules.Rule {
	return rules.Rule{ID: id, Src: "client", Dst: "db", Layer: rules.LayerL4, Action: action}
}

// roundTrip writes payload and reads until len(payload) bytes or error.
func roundTrip(t *testing.T, addr string, payload []byte) ([]byte, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.Write(payload); err != nil {
		return nil, err
	}
	got := make([]byte, len(payload))
	n, err := io.ReadFull(c, got)
	return got[:n], err
}

func TestRelayPassThrough(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	r := newRelay(t, rules.NewMatcher(nil), sink, up)

	payload := bytes.Repeat([]byte("hello stream "), 1000)
	got, err := roundTrip(t, r.Addr(), payload)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("echoed payload differs")
	}
	r.Close()

	opens := sink.byKind(eventlog.KindConnOpen)
	closes := sink.byKind(eventlog.KindConnClose)
	if len(opens) != 1 || len(closes) != 1 {
		t.Fatalf("want 1 open + 1 close record, got %d + %d", len(opens), len(closes))
	}
	cl := closes[0]
	if cl.RequestID != opens[0].RequestID {
		t.Fatal("open/close records not paired by connection ID")
	}
	if cl.BytesUp != int64(len(payload)) || cl.BytesDown != int64(len(payload)) {
		t.Fatalf("bytes up/down = %d/%d, want %d each", cl.BytesUp, cl.BytesDown, len(payload))
	}
	if cl.FaultAction != "" || cl.GremlinGenerated {
		t.Fatalf("fault recorded on clean connection: %+v", cl)
	}
	st := r.Stats()
	if st.Conns != 1 || st.Open != 0 || st.Faults() != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestConnectRefuse(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("refuse-1", rules.ActionAbort)
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)

	// The RST can land while the client is still inside connect() (the
	// kernel completed the handshake from the listen backlog), so either
	// the dial or the first round trip must fail.
	if c, err := net.Dial("tcp", r.Addr()); err == nil {
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if _, werr := c.Write([]byte("ping")); werr == nil {
			buf := make([]byte, 4)
			if _, rerr := io.ReadFull(c, buf); rerr == nil {
				t.Fatal("want connection error on refused connect")
			}
		}
		c.Close()
	}
	r.Close()
	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 || closes[0].FaultAction != "abort" || closes[0].FaultRuleID != "refuse-1" {
		t.Fatalf("close record = %+v", closes)
	}
	if !closes[0].GremlinGenerated {
		t.Fatal("refused close not marked gremlin-generated")
	}
	if r.Stats().Refused != 1 {
		t.Fatalf("refused counter = %d", r.Stats().Refused)
	}
}

func TestConnectDelay(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("cdelay-1", rules.ActionDelay)
	rule.DelayMillis = 150
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)

	start := time.Now()
	got, err := roundTrip(t, r.Addr(), []byte("ping"))
	if err != nil || string(got) != "ping" {
		t.Fatalf("round trip: %q %v", got, err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("connect-delay not applied: %v", d)
	}
	r.Close()
	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 || closes[0].FaultAction != "delay" || closes[0].InjectedDelayMillis != 150 {
		t.Fatalf("close record = %+v", closes)
	}
	if r.Stats().ConnectDelayed != 1 {
		t.Fatalf("connectDelayed counter = %d", r.Stats().ConnectDelayed)
	}
}

func TestSeverAfterBytes(t *testing.T) {
	for _, mode := range []string{rules.SeverRST, rules.SeverFIN} {
		t.Run(mode, func(t *testing.T) {
			up, stop := echoServer(t)
			defer stop()
			sink := &recordSink{}
			m := rules.NewMatcher(nil)
			rule := l4Rule("sever-1", rules.ActionSever)
			rule.AbortAfterBytes = 1024
			rule.SeverMode = mode
			if err := m.Install(rule); err != nil {
				t.Fatal(err)
			}
			r := newRelay(t, m, sink, up)

			payload := bytes.Repeat([]byte("x"), 64*1024)
			_, err := roundTrip(t, r.Addr(), payload)
			if err == nil {
				t.Fatal("want mid-stream failure from sever")
			}
			r.Close()
			closes := sink.byKind(eventlog.KindConnClose)
			if len(closes) != 1 {
				t.Fatalf("want 1 close record, got %d", len(closes))
			}
			cl := closes[0]
			if cl.FaultAction != "sever" || cl.FaultRuleID != "sever-1" {
				t.Fatalf("close record = %+v", cl)
			}
			if cl.BytesUp != 1024 {
				t.Fatalf("bytesUp = %d, want exactly 1024 (clipped at threshold)", cl.BytesUp)
			}
			if r.Stats().Severed != 1 {
				t.Fatalf("severed counter = %d", r.Stats().Severed)
			}
		})
	}
}

func TestThrottlePacesTransfer(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("throttle-1", rules.ActionThrottle)
	rule.On = rules.OnResponse // pace the echoed bytes coming back
	rule.RateBytesPerSec = 64 * 1024
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)

	payload := bytes.Repeat([]byte("y"), 64*1024)
	start := time.Now()
	got, err := roundTrip(t, r.Addr(), payload)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by throttle")
	}
	// 64 KiB at 64 KiB/s with a 16 KiB burst: at least ~700ms.
	if d := time.Since(start); d < 500*time.Millisecond {
		t.Fatalf("transfer too fast for throttle: %v", d)
	}
	r.Close()
	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 || closes[0].FaultAction != "throttle" {
		t.Fatalf("close record = %+v", closes)
	}
	if r.Stats().Throttled != 1 {
		t.Fatalf("throttled counter = %d", r.Stats().Throttled)
	}
}

func TestJitterDelaysChunks(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("jitter-1", rules.ActionJitter)
	rule.DelayMillis = 100
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)

	start := time.Now()
	got, err := roundTrip(t, r.Addr(), []byte("ping"))
	if err != nil || string(got) != "ping" {
		t.Fatalf("round trip: %q %v", got, err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("jitter not applied: %v", d)
	}
	r.Close()
	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 || closes[0].FaultAction != "jitter" || closes[0].InjectedDelayMillis < 100 {
		t.Fatalf("close record = %+v", closes)
	}
}

func TestHalfOpenGoesSilent(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("half-1", rules.ActionHalfOpen)
	rule.On = rules.OnResponse // upstream's reply never comes back
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)

	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	// The reply direction is half-open: the read must time out rather
	// than error — the socket is alive but silent.
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 16)
	_, err = c.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want read timeout on half-open connection, got %v", err)
	}
	c.Close()
	r.Close()

	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 || closes[0].FaultAction != "halfopen" {
		t.Fatalf("close record = %+v", closes)
	}
	if closes[0].BytesUp != 4 || closes[0].BytesDown != 0 {
		t.Fatalf("bytes = %d/%d, want 4/0", closes[0].BytesUp, closes[0].BytesDown)
	}
	if r.Stats().HalfOpened != 1 {
		t.Fatalf("halfOpened counter = %d", r.Stats().HalfOpened)
	}
}

// TestTornConnectionEmitsClose is the torn-connection guarantee: a
// downstream that resets mid-stream still produces the paired close
// record with the bytes relayed so far.
func TestTornConnectionEmitsClose(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	r := newRelay(t, rules.NewMatcher(nil), sink, up)

	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("partial payload")); err != nil {
		t.Fatal(err)
	}
	// Read the echo so the write definitely crossed the relay.
	buf := make([]byte, 15)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	// Tear the connection: linger 0 turns Close into a RST.
	c.(*net.TCPConn).SetLinger(0)
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if closes := sink.byKind(eventlog.KindConnClose); len(closes) == 1 {
			if closes[0].BytesUp != 15 || closes[0].BytesDown != 15 {
				t.Fatalf("bytes = %d/%d, want 15/15", closes[0].BytesUp, closes[0].BytesDown)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("close record never emitted for torn connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.Close()
}

// TestRelayCloseEmitsCloseForLiveConns asserts Close tears down live
// sessions and their close records are still emitted.
func TestRelayCloseEmitsCloseForLiveConns(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	r := newRelay(t, rules.NewMatcher(nil), sink, up)

	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	closes := sink.byKind(eventlog.KindConnClose)
	if len(closes) != 1 {
		t.Fatalf("want close record after relay Close, got %d", len(closes))
	}
}

// TestProbabilityZeroNeverFires wires a 0.0001-probability sever and
// checks most connections pass; mainly it exercises per-connection
// sampling rather than per-chunk.
func TestProbabilitySampledPerConnection(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	rule := l4Rule("sever-p", rules.ActionSever)
	rule.Probability = 0.0001
	if err := m.Install(rule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)
	for i := 0; i < 20; i++ {
		if _, err := roundTrip(t, r.Addr(), []byte("ok")); err != nil {
			t.Fatalf("conn %d unexpectedly faulted: %v", i, err)
		}
	}
}

// TestHTTPRulesNeverMatchL4 installs an HTTP-layer abort for the same
// edge and asserts the relay ignores it: the planes are disjoint.
func TestHTTPRulesNeverMatchL4(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	httpRule := rules.Rule{ID: "h1", Src: "client", Dst: "db", Action: rules.ActionAbort, ErrorCode: 503}
	if err := m.Install(httpRule); err != nil {
		t.Fatal(err)
	}
	r := newRelay(t, m, sink, up)
	got, err := roundTrip(t, r.Addr(), []byte("ping"))
	if err != nil || string(got) != "ping" {
		t.Fatalf("http-layer rule leaked onto the L4 plane: %q %v", got, err)
	}
}

// TestConcurrentConnsWithRuleSwaps is the -race workhorse: many
// concurrent connections while the rule set is swapped via versioned
// CAS applies, cycling sever/throttle/half-open faults. The invariant
// is structural: no data race, and every connection ends with a paired
// open/close record.
func TestConcurrentConnsWithRuleSwaps(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	sink := &recordSink{}
	m := rules.NewMatcher(nil)
	r := newRelay(t, m, sink, up)

	stopSwaps := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		sever := l4Rule("swap-sever", rules.ActionSever)
		sever.AbortAfterBytes = 512
		throttle := l4Rule("swap-throttle", rules.ActionThrottle)
		throttle.RateBytesPerSec = 1 << 20
		half := l4Rule("swap-half", rules.ActionHalfOpen)
		half.On = rules.OnResponse
		sets := [][]rules.Rule{{sever}, {throttle}, {half}, nil}
		for i := 0; ; i++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			st := m.Status()
			_, err := m.ApplyRuleSet(rules.RuleSet{
				Generation: st.Generation + 1,
				Rules:      sets[i%len(sets)],
			}, st.Generation)
			if err != nil {
				t.Errorf("ApplyRuleSet: %v", err)
				return
			}
		}
	}()

	const conns = 40
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", r.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(2 * time.Second))
			payload := bytes.Repeat([]byte(fmt.Sprintf("c%d-", i)), 300)
			c.Write(payload)
			io.Copy(io.Discard, c) // until echo done, fault, or deadline
		}(i)
	}
	wg.Wait()
	close(stopSwaps)
	swapper.Wait()
	r.Close()

	opens := sink.byKind(eventlog.KindConnOpen)
	closes := sink.byKind(eventlog.KindConnClose)
	if len(opens) != conns || len(closes) != conns {
		t.Fatalf("open/close records = %d/%d, want %d each", len(opens), len(closes), conns)
	}
	paired := map[string]bool{}
	for _, o := range opens {
		paired[o.RequestID] = true
	}
	for _, cl := range closes {
		if !paired[cl.RequestID] {
			t.Fatalf("close record %q without matching open", cl.RequestID)
		}
	}
	if got := r.Stats().Conns; got != conns {
		t.Fatalf("conns counter = %d, want %d", got, conns)
	}
}
