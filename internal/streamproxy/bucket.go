package streamproxy

import "time"

// bucket is a token bucket pacing one relay direction. It is only ever
// used by that direction's single pump goroutine, so it needs no
// locking.
type bucket struct {
	rate  float64 // tokens (bytes) per second
	burst float64
	allow float64
	last  time.Time
}

// newBucket builds a bucket for rate bytes/second. The burst is kept
// small relative to the rate so pacing is visible even for transfers
// near the copy buffer size.
func newBucket(rate int64) *bucket {
	b := &bucket{rate: float64(rate), last: time.Now()}
	b.burst = float64(rate) / 4
	if b.burst < 8192 {
		b.burst = 8192
	}
	b.allow = b.burst
	return b
}

// wait blocks until n bytes of budget are available (the balance may go
// negative, which simply lengthens the next wait) or the session is
// torn down, in which case it reports false.
func (b *bucket) wait(n int, done <-chan struct{}) bool {
	now := time.Now()
	b.allow += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.allow > b.burst {
		b.allow = b.burst
	}
	b.allow -= float64(n)
	if b.allow >= 0 {
		return true
	}
	d := time.Duration(-b.allow / b.rate * float64(time.Second))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
