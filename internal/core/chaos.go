package core

import (
	"errors"
	"math/rand"
	"time"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// ChaosOptions tunes RandomScenario.
type ChaosOptions struct {
	// SkipServices excludes services from being failure targets.
	SkipServices []string

	// MaxDelay bounds randomly chosen delay intervals (default 2 s).
	MaxDelay time.Duration

	// AllTraffic makes the generated faults hit every request (pattern
	// "*"), which is how Chaos Monkey operates; the default (false)
	// confines them to test traffic like a normal recipe.
	AllTraffic bool
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	return o
}

// RandomScenario generates one randomized failure over the application
// graph — the Chaos Monkey baseline the paper contrasts itself with
// (§8.1): unpredictable faults, no coupling to assertions. It exists so
// the randomized and systematic approaches can be compared on the same
// data plane; the paper's critique applies verbatim — a random fault tells
// you *that* something broke, a recipe tells you *what should have
// happened and why it did not*.
//
// The scenario kind, target, and parameters are drawn from rng, so a
// seeded generator yields a reproducible chaos schedule.
func RandomScenario(g *graph.Graph, rng *rand.Rand, opts ChaosOptions) (Scenario, error) {
	if rng == nil {
		return nil, errors.New("core: RandomScenario needs a rand.Rand")
	}
	o := opts.withDefaults()
	skip := make(map[string]bool, len(o.SkipServices))
	for _, s := range o.SkipServices {
		skip[s] = true
	}

	// Candidate targets: services with at least one unskipped dependent
	// (someone must be there to feel the failure).
	var targets []string
	for _, svc := range g.Services() {
		if skip[svc] {
			continue
		}
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			if !skip[d] {
				targets = append(targets, svc)
				break
			}
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("core: RandomScenario: no services with dependents to fail")
	}
	target := targets[rng.Intn(len(targets))]

	pattern := "" // recipe default (test traffic)
	if o.AllTraffic {
		pattern = "*"
	}
	delay := time.Duration(1+rng.Int63n(int64(o.MaxDelay/time.Millisecond))) * time.Millisecond

	switch rng.Intn(4) {
	case 0:
		return chaosWrapped{Crash{Service: target, Probability: randProb(rng)}, pattern}, nil
	case 1:
		return chaosWrapped{Overload{Service: target, Delay: delay}, pattern}, nil
	case 2:
		return chaosWrapped{Hang{Service: target, Interval: delay * 10}, pattern}, nil
	default:
		// A degraded edge into the target.
		deps, err := g.Dependents(target)
		if err != nil {
			return nil, err
		}
		var candidates []string
		for _, d := range deps {
			if !skip[d] {
				candidates = append(candidates, d)
			}
		}
		src := candidates[rng.Intn(len(candidates))]
		return chaosWrapped{Delay{Src: src, Dst: target, Interval: delay, Probability: randProb(rng)}, pattern}, nil
	}
}

func randProb(rng *rand.Rand) float64 {
	// Bias toward full-strength faults, Chaos Monkey style.
	if rng.Intn(2) == 0 {
		return 1
	}
	return 0.25 + 0.75*rng.Float64()
}

// chaosWrapped overrides the recipe-level pattern for a generated
// scenario, so AllTraffic chaos hits production flows like the baseline
// tool does.
type chaosWrapped struct {
	Scenario

	pattern string
}

// Describe implements Scenario.
func (c chaosWrapped) Describe() string {
	if c.pattern == "*" {
		return "chaos:" + c.Scenario.Describe() + " (all traffic)"
	}
	return "chaos:" + c.Scenario.Describe()
}

// Translate implements Scenario.
func (c chaosWrapped) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	if c.pattern != "" {
		pattern = c.pattern
	}
	return c.Scenario.Translate(g, ids, pattern)
}
