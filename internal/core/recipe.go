package core

import (
	"errors"
	"fmt"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// Check is one assertion evaluated against the event logs after the
// failure has been staged and test load injected.
type Check func(c *checker.Checker) (checker.Result, error)

// Recipe is a complete test description: the outage scenario to create and
// the assertions to validate (paper §3.2).
type Recipe struct {
	// Name labels the recipe in reports.
	Name string

	// Scenarios are staged together (one outage may combine several).
	Scenarios []Scenario

	// Checks are evaluated after load injection.
	Checks []Check

	// Pattern confines fault injection to request IDs matching it.
	// Defaults to DefaultPattern ("test-*").
	Pattern string
}

// Translate decomposes the recipe's scenarios into fault-injection rules
// over the application graph — the paper's Recipe Translator.
func (r Recipe) Translate(g *graph.Graph) ([]rules.Rule, error) {
	if len(r.Scenarios) == 0 {
		return nil, errors.New("core: recipe has no scenarios")
	}
	pattern := r.Pattern
	if pattern == "" {
		pattern = DefaultPattern
	}
	ids := NewIDGen(r.name())
	var out []rules.Rule
	for _, s := range r.Scenarios {
		rs, err := s.Translate(g, ids, pattern)
		if err != nil {
			return nil, fmt.Errorf("core: translate %s: %w", s.Describe(), err)
		}
		out = append(out, rs...)
	}
	if err := rules.ValidateAll(out); err != nil {
		return nil, fmt.Errorf("core: recipe %s produced invalid rules: %w", r.name(), err)
	}
	return out, nil
}

func (r Recipe) name() string {
	if r.Name != "" {
		return r.Name
	}
	return "recipe"
}

// ExpectTimeouts asserts that the service answers its upstreams within
// maxLatency during the outage (HasTimeouts, Table 3).
func ExpectTimeouts(service string, maxLatency time.Duration) Check {
	return ExpectTimeoutsOn(service, maxLatency, DefaultPattern)
}

// ExpectTimeoutsOn is ExpectTimeouts with an explicit request-ID pattern.
func ExpectTimeoutsOn(service string, maxLatency time.Duration, pattern string) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasTimeouts(service, maxLatency, pattern)
	}
}

// ExpectBoundedRetries asserts that src retries failed calls to dst at most
// maxTries times (HasBoundedRetries, Table 3).
func ExpectBoundedRetries(src, dst string, maxTries int) Check {
	return ExpectBoundedRetriesOpts(src, dst, maxTries, DefaultPattern, checker.BoundedRetriesOptions{})
}

// ExpectBoundedRetriesOpts is ExpectBoundedRetries with explicit pattern
// and thresholds.
func ExpectBoundedRetriesOpts(src, dst string, maxTries int, pattern string, opts checker.BoundedRetriesOptions) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasBoundedRetries(src, dst, maxTries, pattern, opts)
	}
}

// ExpectCircuitBreaker asserts that src stops calling dst for tdelta after
// threshold failures (HasCircuitBreaker, Table 3).
func ExpectCircuitBreaker(src, dst string, threshold int, tdelta time.Duration) Check {
	return ExpectCircuitBreakerOn(src, dst, threshold, tdelta, DefaultPattern)
}

// ExpectCircuitBreakerOn is ExpectCircuitBreaker with an explicit
// request-ID pattern.
func ExpectCircuitBreakerOn(src, dst string, threshold int, tdelta time.Duration, pattern string) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasCircuitBreaker(src, dst, threshold, tdelta, pattern, checker.CircuitBreakerOptions{})
	}
}

// ExpectBulkhead asserts that src keeps calling its other dependencies at
// >= rate req/s while slowDst is degraded (HasBulkhead, Table 3).
func ExpectBulkhead(src, slowDst string, rate float64) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasBulkhead(src, slowDst, rate, DefaultPattern)
	}
}

// ExpectNoCalls asserts that src never called dst on test flows.
func ExpectNoCalls(src, dst string) Check {
	return ExpectNoCallsOn(src, dst, DefaultPattern)
}

// ExpectNoCallsOn is ExpectNoCalls with an explicit request-ID pattern.
func ExpectNoCallsOn(src, dst, pattern string) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.NoCallsTo(src, dst, pattern)
	}
}

// ExpectFallback asserts that the service kept succeeding for at least
// okFraction of its replies during the outage.
func ExpectFallback(service string, okFraction float64) Check {
	return ExpectFallbackOn(service, okFraction, DefaultPattern)
}

// ExpectFallbackOn is ExpectFallback with an explicit request-ID pattern.
func ExpectFallbackOn(service string, okFraction float64, pattern string) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasFallback(service, okFraction, pattern)
	}
}

// ExpectCustom wraps an arbitrary closure as a named Check, for assertions
// composed directly from queries and base assertions.
func ExpectCustom(name string, fn func(c *checker.Checker) (bool, string, error)) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		ok, details, err := fn(c)
		if err != nil {
			return checker.Result{}, err
		}
		return checker.Result{Check: name, Passed: ok, Details: details}, nil
	}
}

// ExpectStreamFaults asserts that at least minFired relayed src→dst
// stream connections closed with a fault fired whose rule ID starts with
// ruleIDPrefix (empty prefix accepts any stream fault). L4 connections
// carry relay-minted IDs rather than request-ID namespaces, so this is
// the stream plane's attribution check: "the sever/throttle I staged was
// actually actuated on this edge".
func ExpectStreamFaults(src, dst, ruleIDPrefix string, minFired int) Check {
	if minFired <= 0 {
		minFired = 1
	}
	name := fmt.Sprintf("StreamFaults(%s->%s, rule=%s*, min=%d)", src, dst, ruleIDPrefix, minFired)
	return ExpectCustom(name, func(c *checker.Checker) (bool, string, error) {
		conns, err := c.GetConns(src, dst, "")
		if err != nil {
			return false, "", err
		}
		fired := checker.CountStreamFaults(conns, ruleIDPrefix)
		details := fmt.Sprintf("%d of %d connections closed with a matching stream fault", fired, len(conns))
		return fired >= minFired, details, nil
	})
}

// ExpectExponentialBackoff asserts that src's retries against dst space
// out by at least growthFactor between consecutive attempts (§2.1's
// exponential-backoff recommendation).
func ExpectExponentialBackoff(src, dst string, growthFactor float64) Check {
	return func(c *checker.Checker) (checker.Result, error) {
		return c.HasExponentialBackoff(src, dst, growthFactor, DefaultPattern)
	}
}
