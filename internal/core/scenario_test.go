package core

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// appGraph: web -> {auth, db}; auth -> db.
func appGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge("web", "auth")
	g.AddEdge("web", "db")
	g.AddEdge("auth", "db")
	return g
}

func translate(t *testing.T, s Scenario) []rules.Rule {
	t.Helper()
	rs, err := s.Translate(appGraph(), NewIDGen("t"), DefaultPattern)
	if err != nil {
		t.Fatalf("translate %s: %v", s.Describe(), err)
	}
	if err := rules.ValidateAll(rs); err != nil {
		t.Fatalf("%s produced invalid rules: %v", s.Describe(), err)
	}
	return rs
}

func TestAbortTranslate(t *testing.T) {
	rs := translate(t, Abort{Src: "web", Dst: "auth", ErrorCode: 503, Probability: 0.5})
	if len(rs) != 1 {
		t.Fatalf("rules = %d", len(rs))
	}
	r := rs[0]
	if r.Action != rules.ActionAbort || r.ErrorCode != 503 || r.Probability != 0.5 ||
		r.Pattern != "test-*" || r.Src != "web" || r.Dst != "auth" {
		t.Fatalf("rule = %+v", r)
	}
}

func TestAbortTranslateUnknownEdge(t *testing.T) {
	g := appGraph()
	if _, err := (Abort{Src: "auth", Dst: "web", ErrorCode: 503}).Translate(g, NewIDGen(""), ""); err == nil {
		t.Fatal("want error for reversed edge")
	}
	if _, err := (Abort{Src: "ghost", Dst: "db", ErrorCode: 503}).Translate(g, NewIDGen(""), ""); err == nil {
		t.Fatal("want error for unknown source")
	}
	if _, err := (Abort{Src: "web", Dst: "ghost", ErrorCode: 503}).Translate(g, NewIDGen(""), ""); err == nil {
		t.Fatal("want error for unknown destination")
	}
}

func TestDelayTranslate(t *testing.T) {
	rs := translate(t, Delay{Src: "web", Dst: "db", Interval: 250 * time.Millisecond})
	if rs[0].Action != rules.ActionDelay || rs[0].DelayMillis != 250 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestModifyTranslate(t *testing.T) {
	rs := translate(t, Modify{Src: "web", Dst: "db", Search: "key", Replace: "badkey", On: rules.OnResponse})
	if rs[0].Action != rules.ActionModify || rs[0].SearchBytes != "key" || rs[0].On != rules.OnResponse {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestScenarioPatternOverride(t *testing.T) {
	rs := translate(t, Abort{Src: "web", Dst: "auth", ErrorCode: 503, Pattern: "canary-*"})
	if rs[0].Pattern != "canary-*" {
		t.Fatalf("pattern = %q", rs[0].Pattern)
	}
}

func TestDisconnectTranslate(t *testing.T) {
	rs := translate(t, Disconnect{From: "web", To: "auth"})
	if rs[0].Action != rules.ActionAbort || rs[0].ErrorCode != 503 || rs[0].EffectiveProbability() != 1 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestCrashTranslateCoversAllDependents(t *testing.T) {
	rs := translate(t, Crash{Service: "db"})
	if len(rs) != 2 { // auth->db and web->db
		t.Fatalf("rules = %d, want 2", len(rs))
	}
	srcs := map[string]bool{}
	for _, r := range rs {
		if r.Dst != "db" || r.ErrorCode != rules.AbortSeverConnection {
			t.Fatalf("rule = %+v", r)
		}
		srcs[r.Src] = true
	}
	if !srcs["auth"] || !srcs["web"] {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestCrashNoDependents(t *testing.T) {
	if _, err := (Crash{Service: "web"}).Translate(appGraph(), NewIDGen(""), ""); err == nil {
		t.Fatal("crash of a root service (no dependents) should error")
	}
}

func TestHangTranslate(t *testing.T) {
	rs := translate(t, Hang{Service: "db"})
	if len(rs) != 2 {
		t.Fatalf("rules = %d", len(rs))
	}
	if rs[0].Action != rules.ActionDelay || rs[0].Delay() != time.Hour {
		t.Fatalf("rule = %+v (default interval should be 1h)", rs[0])
	}
	short := translate(t, Hang{Service: "db", Interval: time.Second})
	if short[0].Delay() != time.Second {
		t.Fatalf("rule = %+v", short[0])
	}
}

func TestOverloadTranslate(t *testing.T) {
	rs := translate(t, Overload{Service: "db"})
	// 2 dependents x (abort + delay).
	if len(rs) != 4 {
		t.Fatalf("rules = %d, want 4", len(rs))
	}
	var aborts, delays int
	for _, r := range rs {
		switch r.Action {
		case rules.ActionAbort:
			aborts++
			if r.Probability != 0.25 || r.ErrorCode != 503 {
				t.Fatalf("abort rule = %+v", r)
			}
		case rules.ActionDelay:
			delays++
			if r.DelayMillis != 100 || r.EffectiveProbability() != 1 {
				t.Fatalf("delay rule = %+v", r)
			}
		}
	}
	if aborts != 2 || delays != 2 {
		t.Fatalf("aborts=%d delays=%d", aborts, delays)
	}
	// Abort must precede delay per dependent so the matcher samples the
	// abort first and falls through to the delay (paper's 25/75 split).
	for i := 0; i < len(rs); i += 2 {
		if rs[i].Action != rules.ActionAbort || rs[i+1].Action != rules.ActionDelay {
			t.Fatalf("rule order broken at %d: %v then %v", i, rs[i].Action, rs[i+1].Action)
		}
	}
}

func TestOverloadCustomFractions(t *testing.T) {
	rs := translate(t, Overload{Service: "db", AbortFraction: 0.5, Delay: time.Second, ErrorCode: 429})
	if rs[0].Probability != 0.5 || rs[0].ErrorCode != 429 || rs[1].DelayMillis != 1000 {
		t.Fatalf("rules = %+v", rs[:2])
	}
	if _, err := (Overload{Service: "db", AbortFraction: 1.5}).Translate(appGraph(), NewIDGen(""), ""); err == nil {
		t.Fatal("want error for fraction > 1")
	}
}

func TestFakeSuccessTranslate(t *testing.T) {
	rs := translate(t, FakeSuccess{Service: "db", Search: "key", Replace: "badkey"})
	if len(rs) != 2 {
		t.Fatalf("rules = %d", len(rs))
	}
	for _, r := range rs {
		if r.On != rules.OnResponse || r.Action != rules.ActionModify {
			t.Fatalf("rule = %+v", r)
		}
	}
}

func TestPartitionTranslate(t *testing.T) {
	rs := translate(t, Partition{SideA: []string{"web"}, SideB: []string{"auth", "db"}})
	if len(rs) != 2 { // web->auth, web->db
		t.Fatalf("rules = %d", len(rs))
	}
	for _, r := range rs {
		if r.ErrorCode != rules.AbortSeverConnection {
			t.Fatalf("rule = %+v", r)
		}
	}
}

func TestPartitionEmptyCut(t *testing.T) {
	g := appGraph()
	g.AddService("island")
	if _, err := (Partition{SideA: []string{"island"}, SideB: []string{"db"}}).Translate(g, NewIDGen(""), ""); err == nil {
		t.Fatal("want error for empty cut")
	}
}

func TestRecipeTranslate(t *testing.T) {
	recipe := Recipe{
		Name: "combo",
		Scenarios: []Scenario{
			Overload{Service: "db"},
			Disconnect{From: "web", To: "auth"},
		},
	}
	rs, err := recipe.Translate(appGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("rules = %d, want 5", len(rs))
	}
	ids := map[string]bool{}
	for _, r := range rs {
		if ids[r.ID] {
			t.Fatalf("duplicate rule id %q", r.ID)
		}
		ids[r.ID] = true
		if !strings.HasPrefix(r.ID, "combo-") {
			t.Fatalf("rule id %q should carry the recipe name", r.ID)
		}
	}
}

func TestRecipeTranslateEmpty(t *testing.T) {
	if _, err := (Recipe{}).Translate(appGraph()); err == nil {
		t.Fatal("want error for empty recipe")
	}
}

func TestRecipeTranslateBadScenario(t *testing.T) {
	recipe := Recipe{Scenarios: []Scenario{Crash{Service: "ghost"}}}
	if _, err := recipe.Translate(appGraph()); err == nil {
		t.Fatal("want error")
	}
}

func TestScenarioDescriptions(t *testing.T) {
	scenarios := []Scenario{
		Abort{Src: "a", Dst: "b", ErrorCode: 503},
		Delay{Src: "a", Dst: "b", Interval: time.Second},
		Modify{Src: "a", Dst: "b", Search: "x", Replace: "y"},
		Disconnect{From: "a", To: "b"},
		Crash{Service: "a"},
		Hang{Service: "a"},
		Overload{Service: "a"},
		FakeSuccess{Service: "a", Search: "x", Replace: "y"},
		Partition{SideA: []string{"a"}, SideB: []string{"b"}},
	}
	for _, s := range scenarios {
		if s.Describe() == "" {
			t.Errorf("%T has empty description", s)
		}
	}
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen("")
	a, b := g.Next("x"), g.Next("x")
	if a == b {
		t.Fatalf("ids not unique: %q", a)
	}
	if !strings.HasPrefix(a, "rule-x-") {
		t.Fatalf("id = %q", a)
	}
}

func newEmptyChecker(t *testing.T) *checker.Checker {
	t.Helper()
	return checker.New(eventlog.NewStore())
}

func TestDegradeNetworkTranslate(t *testing.T) {
	rs := translate(t, DegradeNetwork{Interval: 50 * time.Millisecond})
	if len(rs) != 3 { // one per edge of the diamond-ish graph
		t.Fatalf("rules = %d, want 3", len(rs))
	}
	for _, r := range rs {
		if r.Action != rules.ActionDelay || r.DelayMillis != 50 {
			t.Fatalf("rule = %+v", r)
		}
	}
	if _, err := (DegradeNetwork{}).Translate(appGraph(), NewIDGen(""), ""); err == nil {
		t.Fatal("want error for zero interval")
	}
	if _, err := (DegradeNetwork{Interval: time.Second}).Translate(graph.New(), NewIDGen(""), ""); err == nil {
		t.Fatal("want error for empty graph")
	}
}
