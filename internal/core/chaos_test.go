package core

import (
	"math/rand"
	"strings"
	"testing"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

func TestRandomScenarioProducesValidRules(t *testing.T) {
	g := appGraph()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		s, err := RandomScenario(g, rng, ChaosOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.Translate(g, NewIDGen("chaos"), DefaultPattern)
		if err != nil {
			t.Fatalf("iteration %d (%s): %v", i, s.Describe(), err)
		}
		if err := rules.ValidateAll(rs); err != nil {
			t.Fatalf("iteration %d produced invalid rules: %v", i, err)
		}
		// Default chaos stays confined to test traffic.
		for _, r := range rs {
			if r.Pattern != DefaultPattern {
				t.Fatalf("pattern = %q, want %q", r.Pattern, DefaultPattern)
			}
		}
		if !strings.HasPrefix(s.Describe(), "chaos:") {
			t.Fatalf("Describe = %q", s.Describe())
		}
	}
}

func TestRandomScenarioAllTraffic(t *testing.T) {
	g := appGraph()
	rng := rand.New(rand.NewSource(3))
	s, err := RandomScenario(g, rng, ChaosOptions{AllTraffic: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Translate(g, NewIDGen("chaos"), DefaultPattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Pattern != "*" {
			t.Fatalf("AllTraffic chaos should match everything, pattern = %q", r.Pattern)
		}
	}
	if !strings.Contains(s.Describe(), "all traffic") {
		t.Fatalf("Describe = %q", s.Describe())
	}
}

func TestRandomScenarioDeterministicWithSeed(t *testing.T) {
	g := appGraph()
	a, err := RandomScenario(g, rand.New(rand.NewSource(5)), ChaosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomScenario(g, rand.New(rand.NewSource(5)), ChaosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Fatalf("same seed produced %q vs %q", a.Describe(), b.Describe())
	}
}

func TestRandomScenarioSkipAndErrors(t *testing.T) {
	g := appGraph()
	rng := rand.New(rand.NewSource(7))
	// Skipping every dependent leaves no observable targets.
	if _, err := RandomScenario(g, rng, ChaosOptions{SkipServices: []string{"web", "auth", "db"}}); err == nil {
		t.Fatal("want error with everything skipped")
	}
	if _, err := RandomScenario(graph.New(), rng, ChaosOptions{}); err == nil {
		t.Fatal("want error for empty graph")
	}
	if _, err := RandomScenario(g, nil, ChaosOptions{}); err == nil {
		t.Fatal("want error for nil rng")
	}
}

func TestRandomScenarioRespectsSkip(t *testing.T) {
	g := appGraph()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		s, err := RandomScenario(g, rng, ChaosOptions{SkipServices: []string{"db"}})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(s.Describe(), "(db)") || strings.Contains(s.Describe(), "db,") {
			t.Fatalf("skipped service targeted: %s", s.Describe())
		}
		rs, err := s.Translate(g, NewIDGen("c"), DefaultPattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Dst == "db" {
				t.Fatalf("skipped service is a fault destination: %+v", r)
			}
		}
	}
}
