package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/topology"
)

// harness bundles a running app with a recipe runner wired over real HTTP
// control channels.
type harness struct {
	app    *topology.App
	runner *core.Runner
}

func newHarness(t *testing.T, spec topology.Spec) *harness {
	t.Helper()
	if spec.RNG == nil {
		spec.RNG = rand.New(rand.NewSource(7))
	}
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := app.Close(); err != nil {
			t.Errorf("close app: %v", err)
		}
	})
	orch := orchestrator.New(app.Registry)
	runner := core.NewRunner(app.Graph, orch, app.Store, app.Store)
	return &harness{app: app, runner: runner}
}

func (h *harness) load(t *testing.T, n int) func() error {
	return func() error {
		_, err := loadgen.Run(h.app.EntryURL(), loadgen.Options{N: n, RNG: rand.New(rand.NewSource(2))})
		return err
	}
}

// TestExample1BoundedRetries reproduces the paper's §3.2 Example 1: stage a
// degradation of ServiceB and assert ServiceA retries at most 5 times.
func TestExample1BoundedRetries(t *testing.T) {
	h := newHarness(t, topology.TwoServices(5, time.Millisecond))

	recipe := core.Recipe{
		Name:      "example1",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks: []core.Check{
			core.ExpectBoundedRetriesOpts("serviceA", "serviceB", 5, core.DefaultPattern,
				checker.BoundedRetriesOptions{FailureThreshold: 5, Window: time.Minute}),
		},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("bounded-retry service failed the check:\n%s", report)
	}
	if report.AgentCount != 1 || len(report.Rules) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.OrchestrationTime <= 0 || report.AssertionTime <= 0 || report.LoadTime <= 0 {
		t.Fatalf("timings missing: %+v", report)
	}

	// Rules are reverted after the run: traffic flows normally again.
	res, err := loadgen.Run(h.app.EntryURL(), loadgen.Options{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() != 1 {
		t.Fatalf("post-run success rate = %v, rules were not reverted", res.SuccessRate())
	}
}

// TestExample1UnboundedRetriesFails is the negative: a service retrying 20
// times fails the 5-retry expectation.
func TestExample1UnboundedRetriesFails(t *testing.T) {
	h := newHarness(t, topology.TwoServices(20, time.Millisecond))
	recipe := core.Recipe{
		Name:      "example1-negative",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() {
		t.Fatalf("20-retry service passed the 5-retry check:\n%s", report)
	}
	if len(report.Failed()) != 1 {
		t.Fatalf("failed = %v", report.Failed())
	}
}

// TestChainedFailures reproduces §4.2's chained test: stage an Overload
// first; only if bounded retries hold, stage a Crash and check for a
// circuit breaker. Our serviceA has bounded retries but no breaker, so the
// chain runs both steps and the second fails.
func TestChainedFailures(t *testing.T) {
	h := newHarness(t, topology.TwoServices(3, time.Millisecond))
	overload := core.Recipe{
		Name:      "step1-overload",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}
	crash := core.Recipe{
		Name:      "step2-crash",
		Scenarios: []core.Scenario{core.Crash{Service: "serviceB"}},
		Checks:    []core.Check{core.ExpectCircuitBreaker("serviceA", "serviceB", 3, 10*time.Second)},
	}
	reports, err := h.runner.RunChain(context.Background(), core.RunOptions{Load: h.load(t, 1), ClearLogs: true}, overload, crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if !reports[0].Passed() {
		t.Fatalf("step 1 should pass:\n%s", reports[0])
	}
	if reports[1].Passed() {
		t.Fatalf("step 2 should fail (no circuit breaker):\n%s", reports[1])
	}
}

// TestChainStopsOnFailure: a failing first step prevents the second from
// running.
func TestChainStopsOnFailure(t *testing.T) {
	h := newHarness(t, topology.TwoServices(20, time.Millisecond))
	failing := core.Recipe{
		Name:      "failing",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}
	never := core.Recipe{
		Name:      "never-runs",
		Scenarios: []core.Scenario{core.Crash{Service: "serviceB"}},
		Checks:    []core.Check{core.ExpectCircuitBreaker("serviceA", "serviceB", 3, time.Second)},
	}
	reports, err := h.runner.RunChain(context.Background(), core.RunOptions{Load: h.load(t, 1), ClearLogs: true}, failing, never)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("chain ran %d steps, want 1", len(reports))
	}
}

func TestRunChainEmpty(t *testing.T) {
	h := newHarness(t, topology.TwoServices(0, 0))
	if _, err := h.runner.RunChain(context.Background(), core.RunOptions{}); err == nil {
		t.Fatal("want error")
	}
}

// TestCrashCascades: crashing the leaf makes the edge see errors — and a
// fallback check against the entry service fails.
func TestCrashCascades(t *testing.T) {
	h := newHarness(t, topology.TwoServices(-1, 0))
	recipe := core.Recipe{
		Name:      "crash-leaf",
		Scenarios: []core.Scenario{core.Crash{Service: "serviceB"}},
		Checks:    []core.Check{core.ExpectFallback("serviceA", 0.9)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 5), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() {
		t.Fatalf("serviceA has no fallback; check should fail:\n%s", report)
	}
}

// TestWordPressFallbackRecipe: the ElasticPress behaviour — Crash of
// elasticsearch is survived via the MySQL fallback.
func TestWordPressFallbackRecipe(t *testing.T) {
	h := newHarness(t, topology.WordPress(topology.WordPressOptions{BackendWorkTime: time.Millisecond}))
	recipe := core.Recipe{
		Name:      "es-crash",
		Scenarios: []core.Scenario{core.Crash{Service: topology.ElasticsearchService}},
		Checks: []core.Check{
			core.ExpectFallback(topology.WordPressService, 0.99),
			core.ExpectTimeouts(topology.WordPressService, time.Second),
		},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 10), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("fallback should survive an ES crash:\n%s", report)
	}
}

// TestWordPressNoTimeoutDetected: delaying elasticsearch exposes the
// missing timeout (the §7.1 finding behind Figure 5).
func TestWordPressNoTimeoutDetected(t *testing.T) {
	h := newHarness(t, topology.WordPress(topology.WordPressOptions{BackendWorkTime: time.Millisecond}))
	recipe := core.Recipe{
		Name: "es-slow",
		Scenarios: []core.Scenario{
			core.Delay{Src: topology.WordPressService, Dst: topology.ElasticsearchService, Interval: 300 * time.Millisecond},
		},
		Checks: []core.Check{core.ExpectTimeouts(topology.WordPressService, 100*time.Millisecond)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 5), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() {
		t.Fatalf("missing timeout should be detected:\n%s", report)
	}
	if !strings.Contains(report.String(), "no effective timeout") {
		t.Fatalf("report = %s", report)
	}
}

func TestKeepRules(t *testing.T) {
	h := newHarness(t, topology.TwoServices(-1, 0))
	recipe := core.Recipe{
		Name:      "keep",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
	}
	_, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), KeepRules: true, ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rules still active: traffic keeps failing.
	res, err := loadgen.Run(h.app.EntryURL(), loadgen.Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() != 0 {
		t.Fatalf("rules should still be installed; success rate = %v", res.SuccessRate())
	}
}

func TestClearLogs(t *testing.T) {
	h := newHarness(t, topology.TwoServices(-1, 0))
	// Pre-existing noise in the store.
	if err := h.app.Store.Log(eventlog.Record{Src: "noise", Dst: "noise", Kind: eventlog.KindRequest}); err != nil {
		t.Fatal(err)
	}
	recipe := core.Recipe{
		Name:      "clear",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
	}
	if _, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), ClearLogs: true}); err != nil {
		t.Fatal(err)
	}
	recs, err := h.app.Store.Select(eventlog.Query{Src: "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("ClearLogs should have wiped pre-existing records")
	}
}

// TestWholeTestUnderOneSecond mirrors the §7.2 claim that a complete test
// (orchestrate + 100 requests + assertions) finishes quickly. We allow a
// generous bound for loaded CI machines.
func TestWholeTestUnderOneSecond(t *testing.T) {
	h := newHarness(t, topology.BinaryTree(2, 0))
	recipe := core.Recipe{
		Name:      "tree-delay",
		Scenarios: []core.Scenario{core.Delay{Src: "tree-0", Dst: "tree-1", Interval: 5 * time.Millisecond}},
		Checks:    []core.Check{core.ExpectTimeouts("tree-0", time.Second)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 100), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("report:\n%s", report)
	}
	if report.TotalTime() > 3*time.Second {
		t.Fatalf("whole test took %s; the paper reports well under a second", report.TotalTime())
	}
}

func TestReportString(t *testing.T) {
	h := newHarness(t, topology.TwoServices(3, time.Millisecond))
	recipe := core.Recipe{
		Name:      "render",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	for _, frag := range []string{"recipe render", "timings:", "HasBoundedRetries"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("report missing %q:\n%s", frag, s)
		}
	}
}

// TestExponentialBackoffEndToEnd observes the demo retry client's real
// backoff through the full stack: the retry gaps recorded by the agent
// satisfy the exponential-backoff check, and a fixed-interval retrier
// fails it.
func TestExponentialBackoffEndToEnd(t *testing.T) {
	// TwoServices uses BaseBackoff with multiplier 2 capped at 4x: gaps of
	// roughly 20, 40, 80, 80 ms. Growth factor 1.5 accommodates the cap.
	h := newHarness(t, topology.TwoServices(3, 20*time.Millisecond))
	recipe := core.Recipe{
		Name:      "backoff",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectExponentialBackoff("serviceA", "serviceB", 1.5)},
	}
	report, err := h.runner.Run(context.Background(), recipe, core.RunOptions{Load: h.load(t, 1), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("exponential backoff should be detected:\n%s", report)
	}
}

// TestRunOperationalFailures covers the runner's error paths: unreachable
// agents, failing load injection, and translation failures must surface as
// errors (never as bogus verdicts) and must not leave rules behind.
func TestRunOperationalFailures(t *testing.T) {
	t.Run("unreachable agents", func(t *testing.T) {
		reg := registry.NewStatic(registry.Instance{
			Service: "serviceA", Addr: "x:1", AgentControlURL: "http://127.0.0.1:1",
		})
		g := graph.New()
		g.AddEdge("serviceA", "serviceB")
		runner := core.NewRunner(g, orchestrator.New(reg), eventlog.NewStore(), nil)
		_, err := runner.Run(context.Background(), core.Recipe{
			Name:      "x",
			Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		}, core.RunOptions{})
		if err == nil {
			t.Fatal("want orchestration error")
		}
	})

	t.Run("load failure reverts rules", func(t *testing.T) {
		h := newHarness(t, topology.TwoServices(0, 0))
		_, err := h.runner.Run(context.Background(), core.Recipe{
			Name:      "x",
			Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		}, core.RunOptions{Load: func() error { return errors.New("generator crashed") }})
		if err == nil {
			t.Fatal("want load error")
		}
		if n := h.app.Agent("serviceA").Matcher().Len(); n != 0 {
			t.Fatalf("%d rules left installed after failed load", n)
		}
	})

	t.Run("translate failure", func(t *testing.T) {
		h := newHarness(t, topology.TwoServices(0, 0))
		_, err := h.runner.Run(context.Background(), core.Recipe{
			Name:      "x",
			Scenarios: []core.Scenario{core.Crash{Service: "ghost"}},
		}, core.RunOptions{})
		if err == nil {
			t.Fatal("want translation error")
		}
	})

	t.Run("check error reverts rules", func(t *testing.T) {
		h := newHarness(t, topology.TwoServices(0, 0))
		_, err := h.runner.Run(context.Background(), core.Recipe{
			Name:      "x",
			Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
			Checks: []core.Check{func(c *checker.Checker) (checker.Result, error) {
				return checker.Result{}, errors.New("assertion machinery broke")
			}},
		}, core.RunOptions{})
		if err == nil {
			t.Fatal("want check error")
		}
		if n := h.app.Agent("serviceA").Matcher().Len(); n != 0 {
			t.Fatalf("%d rules left installed after failed check", n)
		}
	})
}

// TestReportJSONSerializable pins the Report wire form used by tooling.
func TestReportJSONSerializable(t *testing.T) {
	h := newHarness(t, topology.TwoServices(0, 0))
	report, err := h.runner.Run(context.Background(), core.Recipe{
		Name:      "json",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
		Checks:    []core.Check{core.ExpectNoCalls("serviceA", "serviceB")},
	}, core.RunOptions{Load: h.load(t, 1), ClearLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recipe", "rules", "agentCount", "results", "orchestrationTimeNs"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q: %s", key, b)
		}
	}
}
