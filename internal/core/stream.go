package core

import (
	"fmt"
	"time"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// L4Pattern is the default request-ID pattern for stream scenarios.
// L4 connections carry relay-minted connection IDs ("l4-<agent>-<n>"),
// never the synthetic test-request IDs HTTP recipes filter on, so
// stream rules default to matching every relayed connection instead of
// inheriting the recipe's HTTP pattern (which would silently never
// match). Campaign isolation for L4 units therefore rests on rule-ID
// attribution in conn-close records, not request-ID namespaces.
const L4Pattern = "l4-*"

// l4Pick resolves a stream scenario's pattern: its own if set, else
// L4Pattern (the recipe-wide HTTP pattern is deliberately not used).
func l4Pick(specific string) string {
	if specific != "" {
		return specific
	}
	return L4Pattern
}

// StreamSever terminates matching Src→Dst connections mid-stream with a
// TCP reset (or FIN, per Mode), optionally after AfterBytes have been
// relayed in the On direction — the database connection that dies
// halfway through a result set.
type StreamSever struct {
	Src, Dst string
	// AfterBytes delays the sever until this many bytes crossed in the
	// On direction; 0 severs before the first byte.
	AfterBytes int64
	// Mode is rules.SeverRST (default) or rules.SeverFIN.
	Mode string
	// On selects the direction watched for AfterBytes; defaults to the
	// downstream→upstream stream (rules.OnRequest).
	On          rules.MessageType
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s StreamSever) Describe() string {
	return fmt.Sprintf("StreamSever(%s->%s, after=%dB, mode=%s)", s.Src, s.Dst, s.AfterBytes, s.Mode)
}

// Translate implements Scenario.
func (s StreamSever) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:              ids.Next("sever"),
		Src:             s.Src,
		Dst:             s.Dst,
		On:              s.On,
		Layer:           rules.LayerL4,
		Action:          rules.ActionSever,
		Pattern:         l4Pick(s.Pattern),
		Probability:     s.Probability,
		AbortAfterBytes: s.AfterBytes,
		SeverMode:       s.Mode,
	}}, nil
}

// StreamHalfOpen stops relaying one direction of matching Src→Dst
// connections while keeping both sockets open — the peer sees silence,
// not an error, which is the failure mode application timeouts exist
// for.
type StreamHalfOpen struct {
	Src, Dst   string
	AfterBytes int64
	// On selects the direction that goes dark; defaults to
	// downstream→upstream. Use rules.OnResponse for "the reply never
	// comes back".
	On          rules.MessageType
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s StreamHalfOpen) Describe() string {
	return fmt.Sprintf("StreamHalfOpen(%s->%s, on=%s, after=%dB)", s.Src, s.Dst, s.On, s.AfterBytes)
}

// Translate implements Scenario.
func (s StreamHalfOpen) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:              ids.Next("halfopen"),
		Src:             s.Src,
		Dst:             s.Dst,
		On:              s.On,
		Layer:           rules.LayerL4,
		Action:          rules.ActionHalfOpen,
		Pattern:         l4Pick(s.Pattern),
		Probability:     s.Probability,
		AbortAfterBytes: s.AfterBytes,
	}}, nil
}

// StreamThrottle paces one direction of matching Src→Dst connections to
// BytesPerSec with a token bucket — the saturated replica link or the
// bandwidth-limited cross-zone connection.
type StreamThrottle struct {
	Src, Dst    string
	BytesPerSec int64
	On          rules.MessageType
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s StreamThrottle) Describe() string {
	return fmt.Sprintf("StreamThrottle(%s->%s, %dB/s)", s.Src, s.Dst, s.BytesPerSec)
}

// Translate implements Scenario.
func (s StreamThrottle) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:              ids.Next("throttle"),
		Src:             s.Src,
		Dst:             s.Dst,
		On:              s.On,
		Layer:           rules.LayerL4,
		Action:          rules.ActionThrottle,
		Pattern:         l4Pick(s.Pattern),
		Probability:     s.Probability,
		RateBytesPerSec: s.BytesPerSec,
	}}, nil
}

// StreamJitter sleeps Interval before relaying each chunk in the On
// direction of matching Src→Dst connections — per-read latency, the
// stream-plane analogue of Delay.
type StreamJitter struct {
	Src, Dst    string
	Interval    time.Duration
	On          rules.MessageType
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s StreamJitter) Describe() string {
	return fmt.Sprintf("StreamJitter(%s->%s, %s)", s.Src, s.Dst, s.Interval)
}

// Translate implements Scenario.
func (s StreamJitter) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:          ids.Next("jitter"),
		Src:         s.Src,
		Dst:         s.Dst,
		On:          s.On,
		Layer:       rules.LayerL4,
		Action:      rules.ActionJitter,
		Pattern:     l4Pick(s.Pattern),
		Probability: s.Probability,
		DelayMillis: s.Interval.Milliseconds(),
	}}, nil
}

// ConnectRefuse resets matching Src→Dst connections at accept, before
// the upstream is ever dialed — the crashed or unreachable dependency
// as seen by a raw TCP client.
type ConnectRefuse struct {
	Src, Dst    string
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s ConnectRefuse) Describe() string {
	return fmt.Sprintf("ConnectRefuse(%s->%s, p=%v)", s.Src, s.Dst, s.Probability)
}

// Translate implements Scenario.
func (s ConnectRefuse) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:          ids.Next("refuse"),
		Src:         s.Src,
		Dst:         s.Dst,
		Layer:       rules.LayerL4,
		Action:      rules.ActionAbort,
		Pattern:     l4Pick(s.Pattern),
		Probability: s.Probability,
	}}, nil
}

// ConnectDelay holds matching Src→Dst connections for Interval before
// dialing the upstream — slow DNS, a saturated accept queue, a dying
// load balancer.
type ConnectDelay struct {
	Src, Dst    string
	Interval    time.Duration
	Pattern     string
	Probability float64
}

// Describe implements Scenario.
func (s ConnectDelay) Describe() string {
	return fmt.Sprintf("ConnectDelay(%s->%s, %s)", s.Src, s.Dst, s.Interval)
}

// Translate implements Scenario.
func (s ConnectDelay) Translate(g *graph.Graph, ids *IDGen, _ string) ([]rules.Rule, error) {
	if err := checkEdge(g, s.Src, s.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:          ids.Next("cdelay"),
		Src:         s.Src,
		Dst:         s.Dst,
		Layer:       rules.LayerL4,
		Action:      rules.ActionDelay,
		Pattern:     l4Pick(s.Pattern),
		Probability: s.Probability,
		DelayMillis: s.Interval.Milliseconds(),
	}}, nil
}
