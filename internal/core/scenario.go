// Package core implements Gremlin's recipe layer: high-level failure
// scenarios (Overload, Crash, Disconnect, Hang, Partition, FakeSuccess, …)
// that the Recipe Translator decomposes into primitive fault-injection
// rules over the logical application graph, plus the Runner that executes a
// recipe end to end — install rules (Failure Orchestrator), inject load,
// evaluate assertions (Assertion Checker), revert.
//
// The paper expresses recipes in Python; this package expresses the same
// scenarios, assertions, and conditional chaining as plain Go values and
// control flow (§4.2 "the operator can take advantage of Python and its
// constructs to create complex test scenarios" — here, of Go's).
package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
	"gremlin/internal/trace"
)

// DefaultPattern confines fault injection to synthetic test traffic.
const DefaultPattern = trace.TestIDPrefix + "*"

// Scenario is a high-level failure scenario. Translate decomposes it into
// primitive rules using the application graph (paper §4.2: "Overload is
// internally decomposed into Abort and Delay actions, parameterized and
// passed to the Failure Orchestrator").
type Scenario interface {
	// Describe names the scenario for reports.
	Describe() string

	// Translate produces the fault-injection rules implementing the
	// scenario. ids mints unique rule IDs; pattern is the recipe's
	// request-ID pattern for rules that do not set their own.
	Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error)
}

// IDGen mints unique rule IDs within one recipe translation.
type IDGen struct {
	prefix string
	n      int
}

// NewIDGen creates an ID generator with the given prefix.
func NewIDGen(prefix string) *IDGen {
	if prefix == "" {
		prefix = "rule"
	}
	return &IDGen{prefix: prefix}
}

// Next returns the next unique ID, tagged with a short hint.
func (g *IDGen) Next(hint string) string {
	g.n++
	return g.prefix + "-" + hint + "-" + strconv.Itoa(g.n)
}

// Abort is the raw Abort primitive (Table 2): abort matching messages from
// Src to Dst and return ErrorCode to Src (or sever the connection when
// ErrorCode is rules.AbortSeverConnection).
type Abort struct {
	Src, Dst    string
	ErrorCode   int
	Pattern     string // overrides the recipe pattern when non-empty
	Probability float64
	On          rules.MessageType
	// CallPath, when non-empty, pins the fault to one execution index
	// (canonical X-Gremlin-EI form) instead of every call on the edge.
	CallPath string
}

// Describe implements Scenario.
func (a Abort) Describe() string {
	return fmt.Sprintf("Abort(%s->%s, code=%d, p=%v)", a.Src, a.Dst, a.ErrorCode, a.Probability)
}

// Translate implements Scenario.
func (a Abort) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	if err := checkEdge(g, a.Src, a.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:          ids.Next("abort"),
		Src:         a.Src,
		Dst:         a.Dst,
		On:          a.On,
		Action:      rules.ActionAbort,
		Pattern:     pick(a.Pattern, pattern),
		CallPath:    a.CallPath,
		Probability: a.Probability,
		ErrorCode:   a.ErrorCode,
	}}, nil
}

// Delay is the raw Delay primitive (Table 2): delay matching messages from
// Src to Dst by Interval.
type Delay struct {
	Src, Dst    string
	Interval    time.Duration
	Pattern     string
	Probability float64
	On          rules.MessageType
	// CallPath, when non-empty, pins the fault to one execution index
	// (canonical X-Gremlin-EI form) instead of every call on the edge.
	CallPath string
}

// Describe implements Scenario.
func (d Delay) Describe() string {
	return fmt.Sprintf("Delay(%s->%s, %s, p=%v)", d.Src, d.Dst, d.Interval, d.Probability)
}

// Translate implements Scenario.
func (d Delay) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	if err := checkEdge(g, d.Src, d.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:          ids.Next("delay"),
		Src:         d.Src,
		Dst:         d.Dst,
		On:          d.On,
		Action:      rules.ActionDelay,
		Pattern:     pick(d.Pattern, pattern),
		CallPath:    d.CallPath,
		Probability: d.Probability,
		DelayMillis: d.Interval.Milliseconds(),
	}}, nil
}

// Modify is the raw Modify primitive (Table 2): rewrite matched bytes in
// messages from Src to Dst.
type Modify struct {
	Src, Dst        string
	Search, Replace string
	Pattern         string
	Probability     float64
	On              rules.MessageType
}

// Describe implements Scenario.
func (m Modify) Describe() string {
	return fmt.Sprintf("Modify(%s->%s, %q->%q)", m.Src, m.Dst, m.Search, m.Replace)
}

// Translate implements Scenario.
func (m Modify) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	if err := checkEdge(g, m.Src, m.Dst); err != nil {
		return nil, err
	}
	return []rules.Rule{{
		ID:           ids.Next("modify"),
		Src:          m.Src,
		Dst:          m.Dst,
		On:           m.On,
		Action:       rules.ActionModify,
		Pattern:      pick(m.Pattern, pattern),
		Probability:  m.Probability,
		SearchBytes:  m.Search,
		ReplaceBytes: m.Replace,
	}}, nil
}

// Disconnect emulates a network disconnection between two specific
// services: every matching request from From to To is aborted with an HTTP
// error (paper §5's disconnect primitive).
type Disconnect struct {
	From, To string
	// ErrorCode defaults to 503.
	ErrorCode int
}

// Describe implements Scenario.
func (d Disconnect) Describe() string { return fmt.Sprintf("Disconnect(%s, %s)", d.From, d.To) }

// Translate implements Scenario.
func (d Disconnect) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	code := d.ErrorCode
	if code == 0 {
		code = 503
	}
	return Abort{Src: d.From, Dst: d.To, ErrorCode: code, Probability: 1}.Translate(g, ids, pattern)
}

// Crash emulates an abrupt crash of a service: requests from every
// dependent are aborted with a severed TCP connection and no
// application-level error (paper §5: "The Error=-1 instructs the agents to
// terminate the connection at the TCP level ... thus emulating an abrupt
// crash"). Probability below 1 yields transient crashes.
type Crash struct {
	Service     string
	Probability float64
}

// Describe implements Scenario.
func (c Crash) Describe() string { return fmt.Sprintf("Crash(%s)", c.Service) }

// Translate implements Scenario.
func (c Crash) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	dependents, err := g.Dependents(c.Service)
	if err != nil {
		return nil, err
	}
	if len(dependents) == 0 {
		return nil, fmt.Errorf("core: Crash(%s): service has no dependents to observe the crash", c.Service)
	}
	out := make([]rules.Rule, 0, len(dependents))
	for _, dep := range dependents {
		// A crashed service refuses TCP connections too: dependents that
		// reach it over a raw stream edge get the L4 connect-refuse
		// equivalent instead of an HTTP abort.
		if g.Protocol(dep, c.Service) == graph.ProtocolTCP {
			out = append(out, rules.Rule{
				ID:          ids.Next("crash"),
				Src:         dep,
				Dst:         c.Service,
				Layer:       rules.LayerL4,
				Action:      rules.ActionAbort,
				Pattern:     L4Pattern,
				Probability: c.Probability,
			})
			continue
		}
		out = append(out, rules.Rule{
			ID:          ids.Next("crash"),
			Src:         dep,
			Dst:         c.Service,
			Action:      rules.ActionAbort,
			Pattern:     pattern,
			Probability: c.Probability,
			ErrorCode:   rules.AbortSeverConnection,
		})
	}
	return out, nil
}

// Hang emulates a hung service: requests from every dependent are delayed
// by a very long interval (paper §5 uses one hour).
type Hang struct {
	Service string
	// Interval defaults to one hour.
	Interval time.Duration
}

// Describe implements Scenario.
func (h Hang) Describe() string { return fmt.Sprintf("Hang(%s)", h.Service) }

// Translate implements Scenario.
func (h Hang) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	interval := h.Interval
	if interval <= 0 {
		interval = time.Hour
	}
	dependents, err := g.Dependents(h.Service)
	if err != nil {
		return nil, err
	}
	if len(dependents) == 0 {
		return nil, fmt.Errorf("core: Hang(%s): service has no dependents to observe the hang", h.Service)
	}
	out := make([]rules.Rule, 0, len(dependents))
	for _, dep := range dependents {
		// A hung service goes silent on the wire: stream dependents see a
		// half-open connection (socket up, replies never arrive), the L4
		// analogue of an unbounded delay.
		if g.Protocol(dep, h.Service) == graph.ProtocolTCP {
			out = append(out, rules.Rule{
				ID:      ids.Next("hang"),
				Src:     dep,
				Dst:     h.Service,
				On:      rules.OnResponse,
				Layer:   rules.LayerL4,
				Action:  rules.ActionHalfOpen,
				Pattern: L4Pattern,
			})
			continue
		}
		out = append(out, rules.Rule{
			ID:          ids.Next("hang"),
			Src:         dep,
			Dst:         h.Service,
			Action:      rules.ActionDelay,
			Pattern:     pattern,
			DelayMillis: interval.Milliseconds(),
		})
	}
	return out, nil
}

// Overload emulates an overloaded service: a fraction of requests from
// every dependent is aborted with an error code and the rest are delayed
// (paper §5: 25% aborted with 503, 75% delayed by 100 ms).
type Overload struct {
	Service string
	// AbortFraction defaults to 0.25.
	AbortFraction float64
	// Delay defaults to 100 ms.
	Delay time.Duration
	// ErrorCode defaults to 503.
	ErrorCode int
}

// Describe implements Scenario.
func (o Overload) Describe() string { return fmt.Sprintf("Overload(%s)", o.Service) }

// Translate implements Scenario.
func (o Overload) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	abortFrac := o.AbortFraction
	if abortFrac <= 0 {
		abortFrac = 0.25
	}
	if abortFrac > 1 {
		return nil, fmt.Errorf("core: Overload(%s): abort fraction %v > 1", o.Service, abortFrac)
	}
	delay := o.Delay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	code := o.ErrorCode
	if code == 0 {
		code = 503
	}
	dependents, err := g.Dependents(o.Service)
	if err != nil {
		return nil, err
	}
	if len(dependents) == 0 {
		return nil, fmt.Errorf("core: Overload(%s): service has no dependents to observe the overload", o.Service)
	}
	var out []rules.Rule
	for _, dep := range dependents {
		// Stream dependents observe an overloaded upstream as refused
		// connections (the full accept queue) plus slow connection
		// establishment for the connections that do get through.
		if g.Protocol(dep, o.Service) == graph.ProtocolTCP {
			out = append(out,
				rules.Rule{
					ID:          ids.Next("overload-refuse"),
					Src:         dep,
					Dst:         o.Service,
					Layer:       rules.LayerL4,
					Action:      rules.ActionAbort,
					Pattern:     L4Pattern,
					Probability: abortFrac,
				},
				rules.Rule{
					ID:          ids.Next("overload-cdelay"),
					Src:         dep,
					Dst:         o.Service,
					Layer:       rules.LayerL4,
					Action:      rules.ActionDelay,
					Pattern:     L4Pattern,
					Probability: 1,
					DelayMillis: delay.Milliseconds(),
				},
			)
			continue
		}
		out = append(out,
			rules.Rule{
				ID:          ids.Next("overload-abort"),
				Src:         dep,
				Dst:         o.Service,
				Action:      rules.ActionAbort,
				Pattern:     pattern,
				Probability: abortFrac,
				ErrorCode:   code,
			},
			// The delay rule fires for every request the abort spared
			// (matcher falls through in install order), recreating the
			// paper's 25/75 split.
			rules.Rule{
				ID:          ids.Next("overload-delay"),
				Src:         dep,
				Dst:         o.Service,
				Action:      rules.ActionDelay,
				Pattern:     pattern,
				Probability: 1,
				DelayMillis: delay.Milliseconds(),
			},
		)
	}
	return out, nil
}

// FakeSuccess corrupts the named service's successful responses: matched
// bytes in response bodies delivered to every dependent are replaced,
// while the 200 status is preserved — triggering input-validation paths in
// callers (paper §5).
type FakeSuccess struct {
	Service         string
	Search, Replace string
}

// Describe implements Scenario.
func (f FakeSuccess) Describe() string {
	return fmt.Sprintf("FakeSuccess(%s, %q->%q)", f.Service, f.Search, f.Replace)
}

// Translate implements Scenario.
func (f FakeSuccess) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	dependents, err := g.Dependents(f.Service)
	if err != nil {
		return nil, err
	}
	if len(dependents) == 0 {
		return nil, fmt.Errorf("core: FakeSuccess(%s): service has no dependents", f.Service)
	}
	out := make([]rules.Rule, 0, len(dependents))
	for _, dep := range dependents {
		// Byte-rewriting is an HTTP-plane primitive; there is no L4
		// equivalent of a well-formed-but-wrong reply, so stream
		// dependents are skipped.
		if g.Protocol(dep, f.Service) == graph.ProtocolTCP {
			continue
		}
		out = append(out, rules.Rule{
			ID:           ids.Next("fake"),
			Src:          dep,
			Dst:          f.Service,
			On:           rules.OnResponse,
			Action:       rules.ActionModify,
			Pattern:      pattern,
			SearchBytes:  f.Search,
			ReplaceBytes: f.Replace,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: FakeSuccess(%s): all dependents reach the service over tcp edges, which cannot carry a modify", f.Service)
	}
	return out, nil
}

// Partition emulates a network partition between two groups of services:
// every edge crossing the cut is aborted with a TCP-level reset in both
// directions (paper §5: "a network partition is implemented using a series
// of Abort operations with a TCP-level reset along the cut of an
// application graph").
type Partition struct {
	SideA, SideB []string
}

// Describe implements Scenario.
func (p Partition) Describe() string {
	return fmt.Sprintf("Partition(%v | %v)", p.SideA, p.SideB)
}

// Translate implements Scenario.
func (p Partition) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	cut, err := g.Cut(p.SideA, p.SideB)
	if err != nil {
		return nil, err
	}
	if len(cut) == 0 {
		return nil, errors.New("core: Partition: no edges cross the cut")
	}
	out := make([]rules.Rule, 0, len(cut))
	for _, e := range cut {
		// Stream edges crossing the cut are partitioned at the L4 plane:
		// connections are refused at accept, the raw-TCP view of an
		// unreachable peer.
		if g.Protocol(e.Src, e.Dst) == graph.ProtocolTCP {
			out = append(out, rules.Rule{
				ID:          ids.Next("partition"),
				Src:         e.Src,
				Dst:         e.Dst,
				Layer:       rules.LayerL4,
				Action:      rules.ActionAbort,
				Pattern:     L4Pattern,
				Probability: 1,
			})
			continue
		}
		out = append(out, rules.Rule{
			ID:          ids.Next("partition"),
			Src:         e.Src,
			Dst:         e.Dst,
			Action:      rules.ActionAbort,
			Pattern:     pattern,
			Probability: 1,
			ErrorCode:   rules.AbortSeverConnection,
		})
	}
	return out, nil
}

func checkEdge(g *graph.Graph, src, dst string) error {
	if !g.Has(src) {
		return fmt.Errorf("%w: %q", graph.ErrUnknownService, src)
	}
	if !g.Has(dst) {
		return fmt.Errorf("%w: %q", graph.ErrUnknownService, dst)
	}
	if !g.HasEdge(src, dst) {
		return fmt.Errorf("core: no edge %s->%s in the application graph", src, dst)
	}
	return nil
}

func pick(specific, fallback string) string {
	if specific != "" {
		return specific
	}
	return fallback
}

// DegradeNetwork emulates a uniformly degraded network: every edge of the
// application graph is delayed by Interval (with optional per-message
// Probability). This is the "outage that impacts all services" used by the
// paper's orchestration benchmark (Figure 7) and a common staging step
// before more surgical faults.
type DegradeNetwork struct {
	// Interval is the added latency per hop.
	Interval time.Duration
	// Probability in (0,1] of delaying each message; 0 means 1.
	Probability float64
}

// Describe implements Scenario.
func (d DegradeNetwork) Describe() string {
	return fmt.Sprintf("DegradeNetwork(%s, p=%v)", d.Interval, d.Probability)
}

// Translate implements Scenario.
func (d DegradeNetwork) Translate(g *graph.Graph, ids *IDGen, pattern string) ([]rules.Rule, error) {
	if d.Interval <= 0 {
		return nil, errors.New("core: DegradeNetwork needs a positive interval")
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, errors.New("core: DegradeNetwork: the application graph has no edges")
	}
	out := make([]rules.Rule, 0, len(edges))
	for _, e := range edges {
		// Stream edges take the degradation as per-chunk jitter — every
		// relayed read is held by the interval, the L4 view of a slow
		// network path.
		if g.Protocol(e.Src, e.Dst) == graph.ProtocolTCP {
			out = append(out, rules.Rule{
				ID:          ids.Next("netdelay"),
				Src:         e.Src,
				Dst:         e.Dst,
				Layer:       rules.LayerL4,
				Action:      rules.ActionJitter,
				Pattern:     L4Pattern,
				Probability: d.Probability,
				DelayMillis: d.Interval.Milliseconds(),
			})
			continue
		}
		out = append(out, rules.Rule{
			ID:          ids.Next("netdelay"),
			Src:         e.Src,
			Dst:         e.Dst,
			Action:      rules.ActionDelay,
			Pattern:     pattern,
			Probability: d.Probability,
			DelayMillis: d.Interval.Milliseconds(),
		})
	}
	return out, nil
}
