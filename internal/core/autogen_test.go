package core

import (
	"strings"
	"testing"
	"time"
)

func TestGenerateRecipesCoverage(t *testing.T) {
	g := appGraph() // web -> {auth, db}; auth -> db
	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Services with dependents: auth (from web) and db (from web, auth) —
	// two recipes each.
	if len(recipes) != 4 {
		t.Fatalf("generated %d recipes, want 4: %v", len(recipes), names(recipes))
	}
	byName := map[string]Recipe{}
	for _, r := range recipes {
		byName[r.Name] = r
	}
	for _, want := range []string{"auto-overload-auth", "auto-overload-db", "auto-crash-auth", "auto-crash-db"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing recipe %q in %v", want, names(recipes))
		}
	}
	// db has two dependents: 2 checks per dependent for overload.
	if got := len(byName["auto-overload-db"].Checks); got != 4 {
		t.Fatalf("auto-overload-db has %d checks, want 4", got)
	}
	if got := len(byName["auto-crash-db"].Checks); got != 2 {
		t.Fatalf("auto-crash-db has %d checks, want 2", got)
	}
	// Overloads come before crashes (least intrusive first).
	for i, r := range recipes {
		if strings.HasPrefix(r.Name, "auto-crash-") && i < 2 {
			t.Fatalf("crash recipe at position %d: %v", i, names(recipes))
		}
	}
}

func TestGenerateRecipesTranslatable(t *testing.T) {
	g := appGraph()
	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recipes {
		if _, err := r.Translate(g); err != nil {
			t.Fatalf("recipe %s does not translate: %v", r.Name, err)
		}
	}
}

func TestGenerateRecipesSkipServices(t *testing.T) {
	g := appGraph()
	g.AddEdge("user", "web") // synthetic edge caller

	recipes, err := GenerateRecipes(g, GenerateOptions{SkipServices: []string{"user", "web"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recipes {
		if strings.Contains(r.Name, "web") {
			t.Fatalf("skipped service appears as a target: %v", names(recipes))
		}
	}
	// auth's only dependent is web (skipped): auth should not be targeted
	// since no unskipped dependent can observe the failure.
	for _, r := range recipes {
		if strings.Contains(r.Name, "auth") {
			t.Fatalf("auth has no unskipped dependents, should be excluded: %v", names(recipes))
		}
	}
	// db is still covered via its unskipped dependent auth.
	found := false
	for _, r := range recipes {
		if r.Name == "auto-overload-db" {
			found = true
		}
	}
	if !found {
		t.Fatalf("db should still be targeted: %v", names(recipes))
	}
}

func TestGenerateRecipesDefaults(t *testing.T) {
	o := GenerateOptions{}.withDefaults()
	if o.MaxRetries != 5 || o.MaxLatency != 2*time.Second ||
		o.BreakerThreshold != 5 || o.BreakerQuiet != 10*time.Second {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestGenerateRecipesEmptyGraph(t *testing.T) {
	recipes, err := GenerateRecipes(appGraphEmpty(), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 0 {
		t.Fatalf("empty graph generated %d recipes", len(recipes))
	}
}

func appGraphEmpty() GraphView { return emptyView{} }

type emptyView struct{}

func (emptyView) Services() []string                  { return nil }
func (emptyView) Dependents(string) ([]string, error) { return nil, nil }

func names(rs []Recipe) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}
