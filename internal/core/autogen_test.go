package core

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/graph"
)

func TestGenerateRecipesCoverage(t *testing.T) {
	g := appGraph() // web -> {auth, db}; auth -> db
	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Services with dependents: auth (from web) and db (from web, auth) —
	// two recipes each.
	if len(recipes) != 4 {
		t.Fatalf("generated %d recipes, want 4: %v", len(recipes), names(recipes))
	}
	byName := map[string]Recipe{}
	for _, r := range recipes {
		byName[r.Name] = r
	}
	for _, want := range []string{"auto-overload-auth", "auto-overload-db", "auto-crash-auth", "auto-crash-db"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing recipe %q in %v", want, names(recipes))
		}
	}
	// db has two dependents: 2 checks per dependent for overload.
	if got := len(byName["auto-overload-db"].Checks); got != 4 {
		t.Fatalf("auto-overload-db has %d checks, want 4", got)
	}
	if got := len(byName["auto-crash-db"].Checks); got != 2 {
		t.Fatalf("auto-crash-db has %d checks, want 2", got)
	}
	// Overloads come before crashes (least intrusive first).
	for i, r := range recipes {
		if strings.HasPrefix(r.Name, "auto-crash-") && i < 2 {
			t.Fatalf("crash recipe at position %d: %v", i, names(recipes))
		}
	}
}

func TestGenerateRecipesTranslatable(t *testing.T) {
	g := appGraph()
	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recipes {
		if _, err := r.Translate(g); err != nil {
			t.Fatalf("recipe %s does not translate: %v", r.Name, err)
		}
	}
}

func TestGenerateRecipesSkipServices(t *testing.T) {
	g := appGraph()
	g.AddEdge("user", "web") // synthetic edge caller

	recipes, err := GenerateRecipes(g, GenerateOptions{SkipServices: []string{"user", "web"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recipes {
		if strings.Contains(r.Name, "web") {
			t.Fatalf("skipped service appears as a target: %v", names(recipes))
		}
	}
	// auth's only dependent is web (skipped): auth should not be targeted
	// since no unskipped dependent can observe the failure.
	for _, r := range recipes {
		if strings.Contains(r.Name, "auth") {
			t.Fatalf("auth has no unskipped dependents, should be excluded: %v", names(recipes))
		}
	}
	// db is still covered via its unskipped dependent auth.
	found := false
	for _, r := range recipes {
		if r.Name == "auto-overload-db" {
			found = true
		}
	}
	if !found {
		t.Fatalf("db should still be targeted: %v", names(recipes))
	}
}

func TestGenerateRecipesDefaults(t *testing.T) {
	o := GenerateOptions{}.withDefaults()
	if o.MaxRetries != 5 || o.MaxLatency != 2*time.Second ||
		o.BreakerThreshold != 5 || o.BreakerQuiet != 10*time.Second {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestGenerateRecipesEmptyGraph(t *testing.T) {
	recipes, err := GenerateRecipes(appGraphEmpty(), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 0 {
		t.Fatalf("empty graph generated %d recipes", len(recipes))
	}
}

func appGraphEmpty() GraphView { return emptyView{} }

type emptyView struct{}

func (emptyView) Services() []string                  { return nil }
func (emptyView) Dependents(string) ([]string, error) { return nil, nil }

func names(rs []Recipe) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

// TestGenerateRecipesCyclicGraph: cycles are legal call graphs (mutually
// recursive services); every member has a dependent, so every member is
// targeted, and translation terminates.
func TestGenerateRecipesCyclicGraph(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a") // closes the cycle

	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"auto-overload-a", "auto-overload-b", "auto-overload-c",
		"auto-crash-a", "auto-crash-b", "auto-crash-c",
	}
	got := names(recipes)
	if len(got) != len(want) {
		t.Fatalf("generated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	for _, r := range recipes {
		if _, err := r.Translate(g); err != nil {
			t.Fatalf("recipe %s does not translate: %v", r.Name, err)
		}
	}
}

// TestGenerateRecipesFanInFanOut: a fan-in/fan-out hub gets one check pair
// per dependent edge, and leaf services observe through the hub.
func TestGenerateRecipesFanInFanOut(t *testing.T) {
	g := graph.New()
	g.AddEdge("src1", "mid") // fan-in to mid
	g.AddEdge("src2", "mid")
	g.AddEdge("mid", "d1") // fan-out from mid
	g.AddEdge("mid", "d2")

	recipes, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Recipe{}
	for _, r := range recipes {
		byName[r.Name] = r
	}
	// Targets are exactly the services with dependents: mid, d1, d2.
	if len(recipes) != 6 {
		t.Fatalf("generated %v", names(recipes))
	}
	// mid has two dependents (fan-in): boundedRetries + timeouts per
	// dependent on overload, one breaker check per dependent on crash.
	if got := len(byName["auto-overload-mid"].Checks); got != 4 {
		t.Fatalf("auto-overload-mid has %d checks, want 4", got)
	}
	if got := len(byName["auto-crash-mid"].Checks); got != 2 {
		t.Fatalf("auto-crash-mid has %d checks, want 2", got)
	}
	// The fan-out leaves have a single dependent each.
	if got := len(byName["auto-overload-d1"].Checks); got != 2 {
		t.Fatalf("auto-overload-d1 has %d checks, want 2", got)
	}

	// Crashing the fan-in hub severs both inbound edges.
	rs, err := byName["auto-crash-mid"].Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]bool{}
	for _, r := range rs {
		if r.Dst == "mid" {
			srcs[r.Src] = true
		}
	}
	if !srcs["src1"] || !srcs["src2"] {
		t.Fatalf("crash rules cover %v, want both fan-in callers", srcs)
	}
}

// TestGenerateRecipesDeterministic: two generations over the same graph
// produce identical plans, element for element — campaigns rely on this
// for stable unit keys across sessions.
func TestGenerateRecipesDeterministic(t *testing.T) {
	g := graph.New()
	g.AddEdge("w", "a")
	g.AddEdge("w", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a") // cycle, to stress ordering

	first, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name {
			t.Fatalf("order differs at %d: %v vs %v", i, names(first), names(second))
		}
		if len(first[i].Checks) != len(second[i].Checks) {
			t.Fatalf("recipe %s check count differs", first[i].Name)
		}
	}
}

// TestGenerateRecipesPatternPropagation: a custom request-ID pattern (a
// campaign run's namespace) reaches every recipe and every translated
// rule, so concurrent runs stay confined to their own traffic.
func TestGenerateRecipesPatternPropagation(t *testing.T) {
	g := appGraph()
	const pat = "camp-run-7-*"
	recipes, err := GenerateRecipes(g, GenerateOptions{Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) == 0 {
		t.Fatal("no recipes generated")
	}
	for _, r := range recipes {
		if r.Pattern != pat {
			t.Fatalf("recipe %s pattern = %q, want %q", r.Name, r.Pattern, pat)
		}
		rs, err := r.Translate(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range rs {
			if rule.Pattern != pat {
				t.Fatalf("recipe %s rule %s pattern = %q, want %q", r.Name, rule.ID, rule.Pattern, pat)
			}
		}
	}

	// Default stays the test-traffic pattern.
	plain, err := GenerateRecipes(g, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Pattern != DefaultPattern {
		t.Fatalf("default pattern = %q", plain[0].Pattern)
	}
}
