package core

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/rules"
)

func TestParseRecipeAllScenarioTypes(t *testing.T) {
	data := `{
	  "name": "everything",
	  "pattern": "canary-*",
	  "scenarios": [
	    {"type": "abort",       "src": "web", "dst": "auth", "errorCode": 503, "probability": 0.5},
	    {"type": "delay",       "src": "web", "dst": "db",   "delayMillis": 150, "on": "response"},
	    {"type": "modify",      "src": "web", "dst": "db",   "search": "key", "replace": "bad"},
	    {"type": "disconnect",  "from": "web", "to": "auth"},
	    {"type": "crash",       "service": "db"},
	    {"type": "hang",        "service": "db", "delayMillis": 60000},
	    {"type": "overload",    "service": "db", "abortFraction": 0.3, "delayMillis": 50, "errorCode": 429},
	    {"type": "fakeSuccess", "service": "db", "search": "ok", "replace": "ko"},
	    {"type": "partition",   "sideA": ["web"], "sideB": ["auth", "db"]}
	  ],
	  "checks": [
	    {"type": "timeouts",       "service": "web", "maxLatencyMillis": 1000},
	    {"type": "boundedRetries", "src": "web", "dst": "db", "maxTries": 5},
	    {"type": "circuitBreaker", "src": "web", "dst": "db", "threshold": 5, "tdeltaMillis": 30000},
	    {"type": "bulkhead",       "src": "web", "slowDst": "db", "rate": 2.5},
	    {"type": "noCalls",        "src": "web", "dst": "auth"},
	    {"type": "fallback",       "service": "web", "okFraction": 0.9}
	  ]
	}`
	r, err := ParseRecipe([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "everything" || r.Pattern != "canary-*" {
		t.Fatalf("recipe = %+v", r)
	}
	if len(r.Scenarios) != 9 || len(r.Checks) != 6 {
		t.Fatalf("got %d scenarios, %d checks", len(r.Scenarios), len(r.Checks))
	}

	// Spot-check decoded parameters.
	if ab, ok := r.Scenarios[0].(Abort); !ok || ab.ErrorCode != 503 || ab.Probability != 0.5 {
		t.Fatalf("scenario 0 = %#v", r.Scenarios[0])
	}
	if dl, ok := r.Scenarios[1].(Delay); !ok || dl.Interval != 150*time.Millisecond || dl.On != rules.OnResponse {
		t.Fatalf("scenario 1 = %#v", r.Scenarios[1])
	}
	if ov, ok := r.Scenarios[6].(Overload); !ok || ov.AbortFraction != 0.3 || ov.ErrorCode != 429 {
		t.Fatalf("scenario 6 = %#v", r.Scenarios[6])
	}
	if pt, ok := r.Scenarios[8].(Partition); !ok || len(pt.SideB) != 2 {
		t.Fatalf("scenario 8 = %#v", r.Scenarios[8])
	}

	// The parsed recipe translates over a matching graph.
	ruleset, err := r.Translate(appGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(ruleset) == 0 {
		t.Fatal("no rules produced")
	}
	// The recipe-level pattern applies to scenarios without their own.
	for _, rule := range ruleset {
		if rule.Pattern != "canary-*" {
			t.Fatalf("rule %s pattern = %q", rule.ID, rule.Pattern)
		}
	}
}

func TestParseRecipeErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
		want string
	}{
		{"bad json", `{`, "parse recipe"},
		{"unknown scenario", `{"scenarios":[{"type":"meteor"}]}`, "unknown scenario type"},
		{"unknown check", `{"scenarios":[{"type":"crash","service":"x"}],"checks":[{"type":"vibes"}]}`, "unknown check type"},
		{"timeouts without latency", `{"scenarios":[{"type":"crash","service":"x"}],"checks":[{"type":"timeouts","service":"x"}]}`, "maxLatencyMillis"},
		{"breaker without threshold", `{"scenarios":[{"type":"crash","service":"x"}],"checks":[{"type":"circuitBreaker","src":"a","dst":"b"}]}`, "threshold"},
		{"bulkhead without rate", `{"scenarios":[{"type":"crash","service":"x"}],"checks":[{"type":"bulkhead","src":"a","slowDst":"b"}]}`, "rate"},
		{"fallback bad fraction", `{"scenarios":[{"type":"crash","service":"x"}],"checks":[{"type":"fallback","service":"x","okFraction":2}]}`, "okFraction"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseRecipe([]byte(tt.data))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestParseRecipeChecksRunnable(t *testing.T) {
	// Parsed checks execute against a checker without panicking.
	r, err := ParseRecipe([]byte(`{
	  "name": "x",
	  "scenarios": [{"type": "crash", "service": "db"}],
	  "checks": [
	    {"type": "noCalls", "src": "web", "dst": "db"},
	    {"type": "boundedRetries", "src": "web", "dst": "db", "maxTries": 3}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	c := newEmptyChecker(t)
	for _, check := range r.Checks {
		if _, err := check(c); err != nil {
			t.Fatal(err)
		}
	}
}
