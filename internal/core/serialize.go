package core

import (
	"encoding/json"
	"fmt"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/rules"
)

// recipeSpec is the JSON wire form of a Recipe, used by tools that load
// recipes from files (gremlin-ctl run). Scenarios and checks are tagged
// unions dispatched on "type".
type recipeSpec struct {
	Name      string         `json:"name"`
	Pattern   string         `json:"pattern,omitempty"`
	Scenarios []scenarioSpec `json:"scenarios"`
	Checks    []checkSpec    `json:"checks,omitempty"`
}

type scenarioSpec struct {
	Type string `json:"type"`

	// Edge-scoped scenarios (abort/delay/modify/disconnect).
	Src  string `json:"src,omitempty"`
	Dst  string `json:"dst,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Service-scoped scenarios (crash/hang/overload/fakeSuccess).
	Service string `json:"service,omitempty"`

	// Partition sides.
	SideA []string `json:"sideA,omitempty"`
	SideB []string `json:"sideB,omitempty"`

	// Parameters.
	ErrorCode     int               `json:"errorCode,omitempty"`
	DelayMillis   int64             `json:"delayMillis,omitempty"`
	Probability   float64           `json:"probability,omitempty"`
	AbortFraction float64           `json:"abortFraction,omitempty"`
	Search        string            `json:"search,omitempty"`
	Replace       string            `json:"replace,omitempty"`
	Pattern       string            `json:"pattern,omitempty"`
	On            rules.MessageType `json:"on,omitempty"`

	// CallPath pins abort/delay scenarios to one execution index.
	// Omitempty keeps pre-explore recipe files byte-identical.
	CallPath string `json:"callPath,omitempty"`

	// Stream-scenario parameters (streamSever/streamThrottle/…).
	RateBytesPerSec int64  `json:"rateBytesPerSec,omitempty"`
	AbortAfterBytes int64  `json:"abortAfterBytes,omitempty"`
	SeverMode       string `json:"severMode,omitempty"`
}

type checkSpec struct {
	Type string `json:"type"`

	Service          string  `json:"service,omitempty"`
	Src              string  `json:"src,omitempty"`
	Dst              string  `json:"dst,omitempty"`
	SlowDst          string  `json:"slowDst,omitempty"`
	MaxLatencyMillis int64   `json:"maxLatencyMillis,omitempty"`
	MaxTries         int     `json:"maxTries,omitempty"`
	Threshold        int     `json:"threshold,omitempty"`
	TdeltaMillis     int64   `json:"tdeltaMillis,omitempty"`
	Rate             float64 `json:"rate,omitempty"`
	OkFraction       float64 `json:"okFraction,omitempty"`

	// streamFaults parameters.
	RuleIDPrefix string `json:"ruleIdPrefix,omitempty"`
	MinFired     int    `json:"minFired,omitempty"`
}

// ParseRecipe decodes a recipe from its JSON wire form:
//
//	{
//	  "name": "db-overload",
//	  "scenarios": [{"type": "overload", "service": "db"}],
//	  "checks":    [{"type": "circuitBreaker", "src": "web", "dst": "db",
//	                 "threshold": 5, "tdeltaMillis": 30000}]
//	}
//
// Scenario types: abort, delay, modify, disconnect, crash, hang, overload,
// fakeSuccess, partition, plus the stream (L4) scenarios streamSever,
// streamHalfOpen, streamThrottle, streamJitter, connectRefuse and
// connectDelay. Check types: timeouts, boundedRetries, circuitBreaker,
// bulkhead, noCalls, fallback, streamFaults.
func ParseRecipe(data []byte) (Recipe, error) {
	var spec recipeSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Recipe{}, fmt.Errorf("core: parse recipe: %w", err)
	}
	r := Recipe{Name: spec.Name, Pattern: spec.Pattern}
	for i, s := range spec.Scenarios {
		sc, err := s.toScenario()
		if err != nil {
			return Recipe{}, fmt.Errorf("core: recipe %q scenario %d: %w", spec.Name, i, err)
		}
		r.Scenarios = append(r.Scenarios, sc)
	}
	for i, c := range spec.Checks {
		check, err := c.toCheck()
		if err != nil {
			return Recipe{}, fmt.Errorf("core: recipe %q check %d: %w", spec.Name, i, err)
		}
		r.Checks = append(r.Checks, check)
	}
	return r, nil
}

func (s scenarioSpec) toScenario() (Scenario, error) {
	switch s.Type {
	case "abort":
		return Abort{Src: s.Src, Dst: s.Dst, ErrorCode: s.ErrorCode,
			Pattern: s.Pattern, Probability: s.Probability, On: s.On,
			CallPath: s.CallPath}, nil
	case "delay":
		return Delay{Src: s.Src, Dst: s.Dst, Interval: millis(s.DelayMillis),
			Pattern: s.Pattern, Probability: s.Probability, On: s.On,
			CallPath: s.CallPath}, nil
	case "modify":
		return Modify{Src: s.Src, Dst: s.Dst, Search: s.Search, Replace: s.Replace,
			Pattern: s.Pattern, Probability: s.Probability, On: s.On}, nil
	case "disconnect":
		return Disconnect{From: s.From, To: s.To, ErrorCode: s.ErrorCode}, nil
	case "crash":
		return Crash{Service: s.Service, Probability: s.Probability}, nil
	case "hang":
		return Hang{Service: s.Service, Interval: millis(s.DelayMillis)}, nil
	case "overload":
		return Overload{Service: s.Service, AbortFraction: s.AbortFraction,
			Delay: millis(s.DelayMillis), ErrorCode: s.ErrorCode}, nil
	case "fakeSuccess":
		return FakeSuccess{Service: s.Service, Search: s.Search, Replace: s.Replace}, nil
	case "partition":
		return Partition{SideA: s.SideA, SideB: s.SideB}, nil
	case "streamSever":
		return StreamSever{Src: s.Src, Dst: s.Dst, AfterBytes: s.AbortAfterBytes,
			Mode: s.SeverMode, On: s.On, Pattern: s.Pattern, Probability: s.Probability}, nil
	case "streamHalfOpen":
		return StreamHalfOpen{Src: s.Src, Dst: s.Dst, AfterBytes: s.AbortAfterBytes,
			On: s.On, Pattern: s.Pattern, Probability: s.Probability}, nil
	case "streamThrottle":
		return StreamThrottle{Src: s.Src, Dst: s.Dst, BytesPerSec: s.RateBytesPerSec,
			On: s.On, Pattern: s.Pattern, Probability: s.Probability}, nil
	case "streamJitter":
		return StreamJitter{Src: s.Src, Dst: s.Dst, Interval: millis(s.DelayMillis),
			On: s.On, Pattern: s.Pattern, Probability: s.Probability}, nil
	case "connectRefuse":
		return ConnectRefuse{Src: s.Src, Dst: s.Dst,
			Pattern: s.Pattern, Probability: s.Probability}, nil
	case "connectDelay":
		return ConnectDelay{Src: s.Src, Dst: s.Dst, Interval: millis(s.DelayMillis),
			Pattern: s.Pattern, Probability: s.Probability}, nil
	default:
		return nil, fmt.Errorf("unknown scenario type %q", s.Type)
	}
}

func (c checkSpec) toCheck() (Check, error) {
	switch c.Type {
	case "timeouts":
		if c.MaxLatencyMillis <= 0 {
			return nil, fmt.Errorf("timeouts check needs maxLatencyMillis")
		}
		return ExpectTimeouts(c.Service, millis(c.MaxLatencyMillis)), nil
	case "boundedRetries":
		return ExpectBoundedRetriesOpts(c.Src, c.Dst, c.MaxTries, DefaultPattern,
			checker.BoundedRetriesOptions{
				FailureThreshold: c.Threshold,
				Window:           millis(c.TdeltaMillis),
			}), nil
	case "circuitBreaker":
		if c.Threshold <= 0 || c.TdeltaMillis <= 0 {
			return nil, fmt.Errorf("circuitBreaker check needs threshold and tdeltaMillis")
		}
		return ExpectCircuitBreaker(c.Src, c.Dst, c.Threshold, millis(c.TdeltaMillis)), nil
	case "bulkhead":
		if c.Rate <= 0 {
			return nil, fmt.Errorf("bulkhead check needs rate")
		}
		return ExpectBulkhead(c.Src, c.SlowDst, c.Rate), nil
	case "noCalls":
		return ExpectNoCalls(c.Src, c.Dst), nil
	case "fallback":
		if c.OkFraction <= 0 || c.OkFraction > 1 {
			return nil, fmt.Errorf("fallback check needs okFraction in (0,1]")
		}
		return ExpectFallback(c.Service, c.OkFraction), nil
	case "streamFaults":
		return ExpectStreamFaults(c.Src, c.Dst, c.RuleIDPrefix, c.MinFired), nil
	default:
		return nil, fmt.Errorf("unknown check type %q", c.Type)
	}
}

func millis(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
