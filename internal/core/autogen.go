package core

import (
	"fmt"
	"sort"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/graph"
)

// GenerateOptions tunes automatic recipe generation.
type GenerateOptions struct {
	// MaxRetries is the retry budget asserted on every caller edge
	// (default 5, the paper's running example).
	MaxRetries int

	// MaxLatency is the response-time bound asserted on every dependent
	// during an overload (default 2 s).
	MaxLatency time.Duration

	// BreakerThreshold is the failure count after which a circuit breaker
	// is expected to open (default 5).
	BreakerThreshold int

	// BreakerQuiet is the expected open-phase duration (default 10 s).
	BreakerQuiet time.Duration

	// SkipServices names services to exclude as fault targets — typically
	// the synthetic edge caller and pure entry points.
	SkipServices []string

	// Pattern confines generated recipes and their checks to request IDs
	// matching it (default DefaultPattern). Campaigns generate each run's
	// plan with a distinct pattern ("camp-<runID>-*") so concurrent runs
	// sharing one event store neither fault nor assert on each other's
	// traffic.
	Pattern string
}

// WithDefaults returns o with zero-valued fields replaced by their
// defaults — the exact options GenerateRecipes will run with. Campaign
// enumeration resolves them once so every template shares one set of
// thresholds.
func (o GenerateOptions) WithDefaults() GenerateOptions { return o.withDefaults() }

func (o GenerateOptions) withDefaults() GenerateOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.MaxLatency <= 0 {
		o.MaxLatency = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerQuiet <= 0 {
		o.BreakerQuiet = 10 * time.Second
	}
	if o.Pattern == "" {
		o.Pattern = DefaultPattern
	}
	return o
}

// GenerateRecipes proposes a systematic test plan from the application
// graph alone — the automation the paper sketches as future work (§9:
// "given semantic annotations to the application graph, it might be
// possible to automatically identify microservices and resiliency patterns
// in need of testing, then construct and run appropriate recipes").
//
// For every service that has dependents, two recipes are generated:
//
//   - an Overload of the service, asserting that each dependent bounds its
//     retries and keeps answering its own upstreams within MaxLatency; and
//   - a Crash of the service, asserting that each dependent trips a
//     circuit breaker.
//
// When the graph carries protocol metadata (*graph.Graph does), tcp edges
// participate too: dependents reaching a target over a stream edge get the
// stream-fault attribution check instead of HTTP-plane assertions, and
// every tcp edge additionally gets a bandwidth-throttle recipe
// ("auto-l4-throttle-<src>-<dst>") and a mid-stream sever recipe
// ("auto-l4-sever-<src>-<dst>").
//
// Recipes are ordered least-intrusive first (overloads and throttles, then
// crashes and severs), so RunChain stops before staging crashes into an
// application that already failed the gentler test.
func GenerateRecipes(g GraphView, opts GenerateOptions) ([]Recipe, error) {
	o := opts.withDefaults()
	skip := make(map[string]bool, len(o.SkipServices))
	for _, s := range o.SkipServices {
		skip[s] = true
	}

	targets := make([]string, 0, len(g.Services()))
	for _, svc := range g.Services() {
		if skip[svc] {
			continue
		}
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, fmt.Errorf("core: generate recipes: %w", err)
		}
		var realDeps []string
		for _, d := range deps {
			if !skip[d] {
				realDeps = append(realDeps, d)
			}
		}
		if len(realDeps) == 0 {
			continue
		}
		targets = append(targets, svc)
	}
	sort.Strings(targets)

	var recipes []Recipe
	for _, svc := range targets {
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, err
		}
		overload := Recipe{
			Name:      "auto-overload-" + svc,
			Scenarios: []Scenario{Overload{Service: svc}},
			Pattern:   o.Pattern,
		}
		for _, d := range deps {
			if skip[d] {
				continue
			}
			// Stream dependents carry no HTTP records to assert retry or
			// timeout patterns over; assert instead that the L4 faults the
			// scenario stages on their edge were actually actuated.
			if edgeProtocol(g, d, svc) == graph.ProtocolTCP {
				overload.Checks = append(overload.Checks,
					ExpectStreamFaults(d, svc, overload.Name, 1))
				continue
			}
			overload.Checks = append(overload.Checks,
				ExpectBoundedRetriesOpts(d, svc, o.MaxRetries, o.Pattern, checker.BoundedRetriesOptions{}),
				ExpectTimeoutsOn(d, o.MaxLatency, o.Pattern),
			)
		}
		recipes = append(recipes, overload)
	}
	for _, e := range tcpEdges(g, skip) {
		name := fmt.Sprintf("auto-l4-throttle-%s-%s", e.Src, e.Dst)
		recipes = append(recipes, Recipe{
			Name: name,
			Scenarios: []Scenario{StreamThrottle{
				Src: e.Src, Dst: e.Dst, BytesPerSec: DefaultThrottleRate, Probability: 1,
			}},
			Pattern: o.Pattern,
			Checks:  []Check{ExpectStreamFaults(e.Src, e.Dst, name, 1)},
		})
	}
	for _, svc := range targets {
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, err
		}
		crash := Recipe{
			Name:      "auto-crash-" + svc,
			Scenarios: []Scenario{Crash{Service: svc}},
			Pattern:   o.Pattern,
		}
		for _, d := range deps {
			if skip[d] {
				continue
			}
			if edgeProtocol(g, d, svc) == graph.ProtocolTCP {
				crash.Checks = append(crash.Checks,
					ExpectStreamFaults(d, svc, crash.Name, 1))
				continue
			}
			crash.Checks = append(crash.Checks,
				ExpectCircuitBreakerOn(d, svc, o.BreakerThreshold, o.BreakerQuiet, o.Pattern))
		}
		recipes = append(recipes, crash)
	}
	for _, e := range tcpEdges(g, skip) {
		name := fmt.Sprintf("auto-l4-sever-%s-%s", e.Src, e.Dst)
		recipes = append(recipes, Recipe{
			Name: name,
			Scenarios: []Scenario{StreamSever{
				Src: e.Src, Dst: e.Dst, Probability: 1,
			}},
			Pattern: o.Pattern,
			Checks:  []Check{ExpectStreamFaults(e.Src, e.Dst, name, 1)},
		})
	}
	return recipes, nil
}

// DefaultThrottleRate is the bandwidth generated throttle recipes pace tcp
// edges to: slow enough that a bulk transfer visibly stretches, fast
// enough that campaign load drivers finish within their deadlines.
const DefaultThrottleRate int64 = 64 * 1024

// GraphView is the read-only slice of the application graph that recipe
// generation needs. *graph.Graph implements it.
type GraphView interface {
	Services() []string
	Dependents(name string) ([]string, error)
}

// protocolView is the optional extension of GraphView carrying per-edge
// protocol metadata (*graph.Graph implements it). Views without it are
// treated as all-HTTP graphs.
type protocolView interface {
	Protocol(src, dst string) string
	TCPEdges() []graph.Edge
}

// edgeProtocol reports the protocol of src→dst under g, defaulting to
// HTTP when the view carries no protocol metadata.
func edgeProtocol(g GraphView, src, dst string) string {
	if pv, ok := g.(protocolView); ok {
		return pv.Protocol(src, dst)
	}
	return graph.ProtocolHTTP
}

// tcpEdges returns g's tcp edges whose endpoints are both unskipped, or
// nil for views without protocol metadata.
func tcpEdges(g GraphView, skip map[string]bool) []graph.Edge {
	pv, ok := g.(protocolView)
	if !ok {
		return nil
	}
	var out []graph.Edge
	for _, e := range pv.TCPEdges() {
		if !skip[e.Src] && !skip[e.Dst] {
			out = append(out, e)
		}
	}
	return out
}
