package core

import (
	"fmt"
	"sort"
	"time"

	"gremlin/internal/checker"
)

// GenerateOptions tunes automatic recipe generation.
type GenerateOptions struct {
	// MaxRetries is the retry budget asserted on every caller edge
	// (default 5, the paper's running example).
	MaxRetries int

	// MaxLatency is the response-time bound asserted on every dependent
	// during an overload (default 2 s).
	MaxLatency time.Duration

	// BreakerThreshold is the failure count after which a circuit breaker
	// is expected to open (default 5).
	BreakerThreshold int

	// BreakerQuiet is the expected open-phase duration (default 10 s).
	BreakerQuiet time.Duration

	// SkipServices names services to exclude as fault targets — typically
	// the synthetic edge caller and pure entry points.
	SkipServices []string

	// Pattern confines generated recipes and their checks to request IDs
	// matching it (default DefaultPattern). Campaigns generate each run's
	// plan with a distinct pattern ("camp-<runID>-*") so concurrent runs
	// sharing one event store neither fault nor assert on each other's
	// traffic.
	Pattern string
}

// WithDefaults returns o with zero-valued fields replaced by their
// defaults — the exact options GenerateRecipes will run with. Campaign
// enumeration resolves them once so every template shares one set of
// thresholds.
func (o GenerateOptions) WithDefaults() GenerateOptions { return o.withDefaults() }

func (o GenerateOptions) withDefaults() GenerateOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.MaxLatency <= 0 {
		o.MaxLatency = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerQuiet <= 0 {
		o.BreakerQuiet = 10 * time.Second
	}
	if o.Pattern == "" {
		o.Pattern = DefaultPattern
	}
	return o
}

// GenerateRecipes proposes a systematic test plan from the application
// graph alone — the automation the paper sketches as future work (§9:
// "given semantic annotations to the application graph, it might be
// possible to automatically identify microservices and resiliency patterns
// in need of testing, then construct and run appropriate recipes").
//
// For every service that has dependents, two recipes are generated:
//
//   - an Overload of the service, asserting that each dependent bounds its
//     retries and keeps answering its own upstreams within MaxLatency; and
//   - a Crash of the service, asserting that each dependent trips a
//     circuit breaker.
//
// Recipes are ordered least-intrusive first (all overloads, then all
// crashes), so RunChain stops before staging crashes into an application
// that already failed the gentler test.
func GenerateRecipes(g GraphView, opts GenerateOptions) ([]Recipe, error) {
	o := opts.withDefaults()
	skip := make(map[string]bool, len(o.SkipServices))
	for _, s := range o.SkipServices {
		skip[s] = true
	}

	targets := make([]string, 0, len(g.Services()))
	for _, svc := range g.Services() {
		if skip[svc] {
			continue
		}
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, fmt.Errorf("core: generate recipes: %w", err)
		}
		var realDeps []string
		for _, d := range deps {
			if !skip[d] {
				realDeps = append(realDeps, d)
			}
		}
		if len(realDeps) == 0 {
			continue
		}
		targets = append(targets, svc)
	}
	sort.Strings(targets)

	var recipes []Recipe
	for _, svc := range targets {
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, err
		}
		overload := Recipe{
			Name:      "auto-overload-" + svc,
			Scenarios: []Scenario{Overload{Service: svc}},
			Pattern:   o.Pattern,
		}
		for _, d := range deps {
			if skip[d] {
				continue
			}
			overload.Checks = append(overload.Checks,
				ExpectBoundedRetriesOpts(d, svc, o.MaxRetries, o.Pattern, checker.BoundedRetriesOptions{}),
				ExpectTimeoutsOn(d, o.MaxLatency, o.Pattern),
			)
		}
		recipes = append(recipes, overload)
	}
	for _, svc := range targets {
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, err
		}
		crash := Recipe{
			Name:      "auto-crash-" + svc,
			Scenarios: []Scenario{Crash{Service: svc}},
			Pattern:   o.Pattern,
		}
		for _, d := range deps {
			if skip[d] {
				continue
			}
			crash.Checks = append(crash.Checks,
				ExpectCircuitBreakerOn(d, svc, o.BreakerThreshold, o.BreakerQuiet, o.Pattern))
		}
		recipes = append(recipes, crash)
	}
	return recipes, nil
}

// GraphView is the read-only slice of the application graph that recipe
// generation needs. *graph.Graph implements it.
type GraphView interface {
	Services() []string
	Dependents(name string) ([]string, error)
}
