package core

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// tcpGraph: web -> db over raw TCP, web -> auth over HTTP.
func tcpGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge("web", "auth")
	g.AddEdge("web", "db")
	g.SetProtocol("web", "db", graph.ProtocolTCP)
	return g
}

func translateOn(t *testing.T, g *graph.Graph, s Scenario) []rules.Rule {
	t.Helper()
	rs, err := s.Translate(g, NewIDGen("t"), DefaultPattern)
	if err != nil {
		t.Fatalf("translate %s: %v", s.Describe(), err)
	}
	if err := rules.ValidateAll(rs); err != nil {
		t.Fatalf("%s produced invalid rules: %v", s.Describe(), err)
	}
	return rs
}

func TestStreamSeverTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), StreamSever{
		Src: "web", Dst: "db", AfterBytes: 4096, Mode: rules.SeverFIN, Probability: 0.5,
	})
	if len(rs) != 1 {
		t.Fatalf("rules = %d", len(rs))
	}
	r := rs[0]
	if r.Layer != rules.LayerL4 || r.Action != rules.ActionSever ||
		r.AbortAfterBytes != 4096 || r.SeverMode != rules.SeverFIN || r.Probability != 0.5 {
		t.Fatalf("rule = %+v", r)
	}
	// Stream rules match relay-minted connection IDs, never the recipe's
	// HTTP test-request pattern.
	if r.Pattern != L4Pattern {
		t.Fatalf("pattern = %q, want %q", r.Pattern, L4Pattern)
	}
}

func TestStreamHalfOpenTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), StreamHalfOpen{
		Src: "web", Dst: "db", On: rules.OnResponse, AfterBytes: 10,
	})
	if rs[0].Action != rules.ActionHalfOpen || rs[0].On != rules.OnResponse ||
		rs[0].Layer != rules.LayerL4 || rs[0].AbortAfterBytes != 10 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestStreamThrottleTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), StreamThrottle{Src: "web", Dst: "db", BytesPerSec: 1024})
	if rs[0].Action != rules.ActionThrottle || rs[0].RateBytesPerSec != 1024 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestStreamJitterTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), StreamJitter{Src: "web", Dst: "db", Interval: 20 * time.Millisecond})
	if rs[0].Action != rules.ActionJitter || rs[0].DelayMillis != 20 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestConnectRefuseTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), ConnectRefuse{Src: "web", Dst: "db", Probability: 0.3})
	if rs[0].Action != rules.ActionAbort || rs[0].Layer != rules.LayerL4 ||
		rs[0].Probability != 0.3 || rs[0].ErrorCode != 0 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestConnectDelayTranslate(t *testing.T) {
	rs := translateOn(t, tcpGraph(), ConnectDelay{Src: "web", Dst: "db", Interval: 50 * time.Millisecond})
	if rs[0].Action != rules.ActionDelay || rs[0].Layer != rules.LayerL4 || rs[0].DelayMillis != 50 {
		t.Fatalf("rule = %+v", rs[0])
	}
}

func TestStreamScenarioUnknownEdge(t *testing.T) {
	for _, s := range []Scenario{
		StreamSever{Src: "db", Dst: "web"},
		StreamThrottle{Src: "ghost", Dst: "db", BytesPerSec: 1},
		ConnectRefuse{Src: "web", Dst: "ghost"},
	} {
		if _, err := s.Translate(tcpGraph(), NewIDGen(""), ""); err == nil {
			t.Fatalf("%s: want error for bad edge", s.Describe())
		}
	}
}

// TestCrashTCPDependents: a crash seen over a tcp edge is a connect
// refuse, while http dependents keep the classic severed HTTP abort.
func TestCrashTCPDependents(t *testing.T) {
	g := tcpGraph()
	g.AddEdge("auth", "db") // http edge into db too
	rs := translateOn(t, g, Crash{Service: "db"})
	if len(rs) != 2 {
		t.Fatalf("rules = %+v", rs)
	}
	bysrc := map[string]rules.Rule{}
	for _, r := range rs {
		bysrc[r.Src] = r
	}
	web := bysrc["web"]
	if web.Layer != rules.LayerL4 || web.Action != rules.ActionAbort ||
		web.Pattern != L4Pattern || web.ErrorCode != 0 {
		t.Fatalf("tcp dependent rule = %+v", web)
	}
	auth := bysrc["auth"]
	if auth.Layer != "" || auth.ErrorCode != rules.AbortSeverConnection || auth.Pattern != DefaultPattern {
		t.Fatalf("http dependent rule = %+v", auth)
	}
}

func TestHangTCPDependents(t *testing.T) {
	rs := translateOn(t, tcpGraph(), Hang{Service: "db"})
	if len(rs) != 1 {
		t.Fatalf("rules = %+v", rs)
	}
	r := rs[0]
	if r.Layer != rules.LayerL4 || r.Action != rules.ActionHalfOpen || r.On != rules.OnResponse {
		t.Fatalf("rule = %+v", r)
	}
}

func TestOverloadTCPDependents(t *testing.T) {
	rs := translateOn(t, tcpGraph(), Overload{Service: "db", AbortFraction: 0.4, Delay: 30 * time.Millisecond})
	if len(rs) != 2 {
		t.Fatalf("rules = %+v", rs)
	}
	var refuse, cdelay *rules.Rule
	for i := range rs {
		switch rs[i].Action {
		case rules.ActionAbort:
			refuse = &rs[i]
		case rules.ActionDelay:
			cdelay = &rs[i]
		}
	}
	if refuse == nil || refuse.Layer != rules.LayerL4 || refuse.Probability != 0.4 {
		t.Fatalf("refuse = %+v", refuse)
	}
	if cdelay == nil || cdelay.Layer != rules.LayerL4 || cdelay.DelayMillis != 30 || cdelay.Probability != 1 {
		t.Fatalf("cdelay = %+v", cdelay)
	}
}

func TestFakeSuccessSkipsTCPDependents(t *testing.T) {
	// With one http and one tcp dependent, only the http edge carries the
	// modify.
	g := tcpGraph()
	g.AddEdge("auth", "db")
	rs := translateOn(t, g, FakeSuccess{Service: "db", Search: "ok", Replace: "ko"})
	if len(rs) != 1 || rs[0].Src != "auth" || rs[0].Action != rules.ActionModify {
		t.Fatalf("rules = %+v", rs)
	}

	// All-tcp dependents cannot carry a modify at all.
	if _, err := (FakeSuccess{Service: "db", Search: "a", Replace: "b"}).
		Translate(tcpGraph(), NewIDGen(""), DefaultPattern); err == nil ||
		!strings.Contains(err.Error(), "tcp") {
		t.Fatalf("err = %v, want all-tcp error", err)
	}
}

func TestPartitionTCPEdges(t *testing.T) {
	rs := translateOn(t, tcpGraph(), Partition{SideA: []string{"web"}, SideB: []string{"auth", "db"}})
	byDst := map[string]rules.Rule{}
	for _, r := range rs {
		byDst[r.Dst] = r
	}
	if r := byDst["db"]; r.Layer != rules.LayerL4 || r.Action != rules.ActionAbort || r.Pattern != L4Pattern {
		t.Fatalf("tcp cut rule = %+v", r)
	}
	if r := byDst["auth"]; r.Layer != "" {
		t.Fatalf("http cut rule = %+v", r)
	}
}

func TestDegradeNetworkTCPEdges(t *testing.T) {
	rs := translateOn(t, tcpGraph(), DegradeNetwork{Interval: 25 * time.Millisecond})
	var l4 int
	for _, r := range rs {
		if r.Layer == rules.LayerL4 {
			l4++
			if r.Action != rules.ActionJitter || r.DelayMillis != 25 || r.Pattern != L4Pattern {
				t.Fatalf("tcp degrade rule = %+v", r)
			}
		}
	}
	if l4 != 1 {
		t.Fatalf("l4 rules = %d in %+v", l4, rs)
	}
}

// TestParseRecipeStreamTypes exercises the JSON wire form of all six
// stream scenarios and the streamFaults check.
func TestParseRecipeStreamTypes(t *testing.T) {
	r, err := ParseRecipe([]byte(`{
	  "name": "l4-everything",
	  "scenarios": [
	    {"type": "streamSever",    "src": "web", "dst": "db", "abortAfterBytes": 2048, "severMode": "fin", "probability": 0.5},
	    {"type": "streamHalfOpen", "src": "web", "dst": "db", "on": "response"},
	    {"type": "streamThrottle", "src": "web", "dst": "db", "rateBytesPerSec": 4096},
	    {"type": "streamJitter",   "src": "web", "dst": "db", "delayMillis": 15},
	    {"type": "connectRefuse",  "src": "web", "dst": "db", "probability": 0.9},
	    {"type": "connectDelay",   "src": "web", "dst": "db", "delayMillis": 200}
	  ],
	  "checks": [
	    {"type": "streamFaults", "src": "web", "dst": "db", "ruleIdPrefix": "l4-everything", "minFired": 2}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 6 || len(r.Checks) != 1 {
		t.Fatalf("got %d scenarios, %d checks", len(r.Scenarios), len(r.Checks))
	}
	if sv, ok := r.Scenarios[0].(StreamSever); !ok || sv.AfterBytes != 2048 || sv.Mode != rules.SeverFIN {
		t.Fatalf("scenario 0 = %#v", r.Scenarios[0])
	}
	if ho, ok := r.Scenarios[1].(StreamHalfOpen); !ok || ho.On != rules.OnResponse {
		t.Fatalf("scenario 1 = %#v", r.Scenarios[1])
	}
	if th, ok := r.Scenarios[2].(StreamThrottle); !ok || th.BytesPerSec != 4096 {
		t.Fatalf("scenario 2 = %#v", r.Scenarios[2])
	}
	if jt, ok := r.Scenarios[3].(StreamJitter); !ok || jt.Interval != 15*time.Millisecond {
		t.Fatalf("scenario 3 = %#v", r.Scenarios[3])
	}
	if cd, ok := r.Scenarios[5].(ConnectDelay); !ok || cd.Interval != 200*time.Millisecond {
		t.Fatalf("scenario 5 = %#v", r.Scenarios[5])
	}

	rs, err := r.Translate(tcpGraph())
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range rs {
		if rule.Layer != rules.LayerL4 || rule.Pattern != L4Pattern {
			t.Fatalf("rule = %+v", rule)
		}
	}

	// The parsed check runs against an empty store (and fails cleanly:
	// no faults have fired yet).
	c := newEmptyChecker(t)
	res, err := r.Checks[0](c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("check passed on an empty store: %+v", res)
	}
}

func TestAutogenTCPGraph(t *testing.T) {
	rcs, err := GenerateRecipes(tcpGraph(), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rcs {
		names[r.Name] = true
	}
	for _, want := range []string{"auto-l4-throttle-web-db", "auto-l4-sever-web-db"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
	// Every generated recipe still translates to valid rules.
	for _, r := range rcs {
		rs, err := r.Translate(tcpGraph())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if err := rules.ValidateAll(rs); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
	}
}
