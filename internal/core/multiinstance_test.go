package core_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/orchestrator"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
	"gremlin/internal/trace"
)

// TestMultiInstanceFanOut reproduces the paper's Figure 3: ServiceA and
// ServiceB each run two instances; "when applying the fault-injection
// rules, the Failure Orchestrator affects communication between every pair
// of instances of ServiceA and ServiceB, by configuring Gremlin agents
// located at 10.1.1.1 and 10.1.1.2" — i.e. the agents of both ServiceA
// instances.
func TestMultiInstanceFanOut(t *testing.T) {
	store := eventlog.NewStore()

	// Two instances of ServiceB.
	var backends []*httptest.Server
	var backendAddrs []string
	for i := 0; i < 2; i++ {
		b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = io.WriteString(w, "B")
		}))
		t.Cleanup(b.Close)
		backends = append(backends, b)
		backendAddrs = append(backendAddrs, strings.TrimPrefix(b.URL, "http://"))
	}
	_ = backends

	// Two instances of ServiceA, each with its own sidecar agent routing
	// to both ServiceB instances.
	reg := registry.NewStatic()
	var agents []*proxy.Agent
	for i := 0; i < 2; i++ {
		agent, err := proxy.New(proxy.Config{
			ServiceName: "serviceA",
			ControlAddr: "127.0.0.1:0",
			Routes: []proxy.Route{{
				Dst:        "serviceB",
				ListenAddr: "127.0.0.1:0",
				Targets:    backendAddrs,
			}},
			Sink: store,
			RNG:  rand.New(rand.NewSource(int64(i + 1))),
		})
		if err != nil {
			t.Fatal(err)
		}
		agent.Start()
		t.Cleanup(func() {
			if err := agent.Close(); err != nil {
				t.Error(err)
			}
		})
		agents = append(agents, agent)
		routeAddr, err := agent.RouteAddr("serviceB")
		if err != nil {
			t.Fatal(err)
		}
		reg.Add(registry.Instance{
			Service:         "serviceA",
			Addr:            routeAddr, // stands in for the instance address
			AgentControlURL: agent.ControlURL(),
		})
	}
	for _, addr := range backendAddrs {
		reg.Add(registry.Instance{Service: "serviceB", Addr: addr})
	}

	g := graph.New()
	g.AddEdge("serviceA", "serviceB")

	orch := orchestrator.New(reg)
	recipe := core.Recipe{
		Name:      "fan-out",
		Scenarios: []core.Scenario{core.Disconnect{From: "serviceA", To: "serviceB"}},
	}
	ruleset, err := recipe.Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := orch.Apply(context.Background(), ruleset)
	if err != nil {
		t.Fatal(err)
	}
	if applied.AgentCount() != 2 {
		t.Fatalf("rules reached %d agents, want both instances' agents", applied.AgentCount())
	}

	// Traffic through EITHER instance's agent is now aborted.
	for i, agent := range agents {
		u, err := agent.RouteURL("serviceB")
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		trace.SetRequestID(req, "test-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("instance %d: status = %d, want 503", i, resp.StatusCode)
		}
	}

	// Revert removes the rules from both agents; traffic flows again.
	if err := applied.Revert(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, agent := range agents {
		if n := agent.Matcher().Len(); n != 0 {
			t.Fatalf("agent %d still has %d rules after revert", i, n)
		}
		u, err := agent.RouteURL("serviceB")
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		trace.SetRequestID(req, "test-2")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || string(body) != "B" {
			t.Fatalf("instance %d after revert: %d %q", i, resp.StatusCode, body)
		}
	}

	// Both instances' observations landed in the shared store, and the
	// route load-balanced across both ServiceB backends.
	recs, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // 2 aborted + 2 clean
		t.Fatalf("observed %d replies, want 4", len(recs))
	}
	agentsSeen := map[string]bool{}
	for _, r := range recs {
		agentsSeen[r.Agent] = true
	}
	if len(agentsSeen) != 1 {
		// Both agents default to the same "serviceA-agent" ID; give them
		// distinct IDs if this becomes load-bearing. The check here is that
		// records arrived from the data plane at all.
		t.Logf("agents seen: %v", agentsSeen)
	}
}
