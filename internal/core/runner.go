package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/orchestrator"
	"gremlin/internal/rules"
)

// Runner executes recipes against a deployment: it owns the three
// control-plane components (translator via Recipe.Translate, the Failure
// Orchestrator, and the Assertion Checker over the event store).
type Runner struct {
	graph *graph.Graph
	orch  *orchestrator.Orchestrator
	check *checker.Checker
	store Clearer
}

// Clearer optionally lets the runner wipe the event store between test
// steps so each step's assertions see only its own observations.
// *eventlog.Store implements it directly; eventlog.Client's Clear has a
// different signature and is adapted via ClearerFunc.
type Clearer interface {
	Clear() int
}

// ClearerFunc adapts a function to Clearer.
type ClearerFunc func() int

// Clear implements Clearer.
func (f ClearerFunc) Clear() int { return f() }

var _ Clearer = (*eventlog.Store)(nil)

// NewRunner builds a Runner. store may be nil if recipes never need log
// clearing between steps.
func NewRunner(g *graph.Graph, orch *orchestrator.Orchestrator, source eventlog.Source, store Clearer) *Runner {
	return &Runner{
		graph: g,
		orch:  orch,
		check: checker.New(source),
		store: store,
	}
}

// Graph returns the runner's application graph.
func (r *Runner) Graph() *graph.Graph { return r.graph }

// Checker returns the runner's assertion checker, for ad-hoc queries
// between recipe steps.
func (r *Runner) Checker() *checker.Checker { return r.check }

// Orchestrator returns the runner's failure orchestrator, for drift
// inspection and lease renewal while a recipe is staged.
func (r *Runner) Orchestrator() *orchestrator.Orchestrator { return r.orch }

// Report is the outcome of one recipe run. Timings separate the
// orchestration, load, and assertion phases — the breakdown the paper
// reports in Figure 7.
type Report struct {
	// Recipe is the recipe name.
	Recipe string `json:"recipe"`

	// Rules are the fault-injection rules the recipe translated into.
	Rules []rules.Rule `json:"rules"`

	// AgentCount is how many agents received rules.
	AgentCount int `json:"agentCount"`

	// Results holds one entry per check, in recipe order.
	Results []checker.Result `json:"results"`

	// TranslateTime is the time to decompose scenarios into rules.
	TranslateTime time.Duration `json:"translateTimeNs"`

	// OrchestrationTime is the time to install rules on all agents.
	OrchestrationTime time.Duration `json:"orchestrationTimeNs"`

	// LoadTime is the time spent injecting test traffic.
	LoadTime time.Duration `json:"loadTimeNs"`

	// AssertionTime is the time to flush logs and evaluate all checks.
	AssertionTime time.Duration `json:"assertionTimeNs"`

	// RevertTime is the time to remove the rules again.
	RevertTime time.Duration `json:"revertTimeNs"`
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, res := range r.Results {
		if !res.Passed {
			return false
		}
	}
	return true
}

// Failed returns the failed check results.
func (r *Report) Failed() []checker.Result {
	var out []checker.Result
	for _, res := range r.Results {
		if !res.Passed {
			out = append(out, res)
		}
	}
	return out
}

// TotalTime sums all phases.
func (r *Report) TotalTime() time.Duration {
	return r.TranslateTime + r.OrchestrationTime + r.LoadTime + r.AssertionTime + r.RevertTime
}

// String renders a multi-line human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	state := "PASSED"
	if !r.Passed() {
		state = "FAILED"
	}
	fmt.Fprintf(&b, "recipe %s: %s (%d rules on %d agents)\n", r.Recipe, state, len(r.Rules), r.AgentCount)
	fmt.Fprintf(&b, "  timings: translate=%s orchestrate=%s load=%s assert=%s revert=%s\n",
		r.TranslateTime.Round(time.Microsecond),
		r.OrchestrationTime.Round(time.Microsecond),
		r.LoadTime.Round(time.Millisecond),
		r.AssertionTime.Round(time.Microsecond),
		r.RevertTime.Round(time.Microsecond))
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %s\n", res)
	}
	return b.String()
}

// RunOptions tunes recipe execution.
type RunOptions struct {
	// Load injects test traffic while the failure is staged. Nil runs the
	// recipe against traffic generated elsewhere (e.g. an ambient load
	// generator).
	Load func() error

	// KeepRules leaves the fault-injection rules installed after the run
	// (for interactive exploration). The default reverts them.
	KeepRules bool

	// ClearLogs wipes the event store before injecting load so assertions
	// evaluate only this run's observations. Campaigns leave this false and
	// instead namespace each run's request-ID pattern, so concurrent runs
	// sharing one store don't erase each other's evidence.
	ClearLogs bool

	// AfterTranslate, when non-nil, observes the translated rule set before
	// it is installed. Campaigns record the edges each run actually faults
	// here, feeding coverage-driven scheduling.
	AfterTranslate func(ruleset []rules.Rule)

	// Owner names the desired-state owner the rules are registered under
	// in the orchestrator. Empty picks an anonymous per-run owner.
	// Campaigns set this so a run's rules are attributable and leasable.
	Owner string

	// LeaseTTL, when positive, leases the staged rules: if the run's
	// process dies without reverting, the orchestrator withdraws them
	// after the TTL — and the agents themselves expire them even if the
	// whole control plane died. Zero stages permanent rules (reverted
	// explicitly, as before).
	LeaseTTL time.Duration
}

// Run executes a recipe: translate → orchestrate → load → assert → revert.
func (r *Runner) Run(ctx context.Context, recipe Recipe, opts RunOptions) (*Report, error) {
	report := &Report{Recipe: recipe.name()}

	t0 := time.Now()
	ruleset, err := recipe.Translate(r.graph)
	if err != nil {
		return nil, err
	}
	report.Rules = ruleset
	report.TranslateTime = time.Since(t0)
	if opts.AfterTranslate != nil {
		opts.AfterTranslate(ruleset)
	}

	if opts.ClearLogs && r.store != nil {
		r.store.Clear()
	}

	t1 := time.Now()
	applied, err := r.orch.ApplyOwned(ctx, opts.Owner, opts.LeaseTTL, ruleset)
	if err != nil {
		return nil, fmt.Errorf("core: orchestrate %s: %w", recipe.name(), err)
	}
	report.OrchestrationTime = time.Since(t1)
	report.AgentCount = applied.AgentCount()

	revert := func() error {
		t := time.Now()
		err := applied.Revert(ctx)
		report.RevertTime = time.Since(t)
		return err
	}

	if opts.Load != nil {
		t2 := time.Now()
		if err := opts.Load(); err != nil {
			_ = revert()
			return nil, fmt.Errorf("core: load injection for %s: %w", recipe.name(), err)
		}
		report.LoadTime = time.Since(t2)
	}

	t3 := time.Now()
	if err := r.orch.FlushAll(ctx); err != nil {
		_ = revert()
		return nil, fmt.Errorf("core: flush observations for %s: %w", recipe.name(), err)
	}
	for _, check := range recipe.Checks {
		res, err := check(r.check)
		if err != nil {
			_ = revert()
			return nil, fmt.Errorf("core: assertion in %s: %w", recipe.name(), err)
		}
		report.Results = append(report.Results, res)
	}
	report.AssertionTime = time.Since(t3)

	if !opts.KeepRules {
		if err := revert(); err != nil {
			return report, fmt.Errorf("core: revert %s: %w", recipe.name(), err)
		}
	}
	return report, nil
}

// RunChain executes recipes in order, stopping at the first recipe whose
// checks fail (paper §4.2 "Chained failures": later, more intrusive
// failures are only staged when earlier expectations held). It returns all
// reports produced; err is non-nil only for operational failures.
func (r *Runner) RunChain(ctx context.Context, opts RunOptions, recipes ...Recipe) ([]*Report, error) {
	if len(recipes) == 0 {
		return nil, errors.New("core: RunChain needs at least one recipe")
	}
	var reports []*Report
	for _, recipe := range recipes {
		rep, err := r.Run(ctx, recipe, opts)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
		if !rep.Passed() {
			break
		}
	}
	return reports, nil
}
