package rules

import (
	"encoding/json"
	"testing"
)

// TestCallPathAbsentMeansMatchAll is the back-compat contract: rule JSON
// written before execution indexing existed (no "callPath" key) must
// parse, validate, match, and hash exactly as before.
func TestCallPathAbsentMeansMatchAll(t *testing.T) {
	raw := `{"id":"r1","src":"a","dst":"b","action":"abort","errorCode":503}`
	var r Rule
	if err := json.Unmarshal([]byte(raw), &r); err != nil {
		t.Fatal(err)
	}
	if r.CallPath != "" {
		t.Fatalf("callPath = %q, want absent", r.CallPath)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("pre-EI rule no longer validates: %v", err)
	}

	// Marshalling back must not introduce the new key, so content hashes
	// of old rule sets are unchanged.
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	json.Unmarshal(out, &m)
	if _, ok := m["callPath"]; ok {
		t.Fatalf("marshalled pre-EI rule grew a callPath key: %s", out)
	}
	if HashRules([]Rule{r}) != HashRules([]Rule{{ID: "r1", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 503}}) {
		t.Fatal("hash of a callPath-absent rule is not stable")
	}
}

// TestCallPathMatching asserts exact-equality matching in both the
// indexed and linear-scan matchers: a callPath rule fires only on the
// message carrying that exact execution index; a callPath-less rule
// fires regardless of the message's index.
func TestCallPathMatching(t *testing.T) {
	for _, linear := range []bool{false, true} {
		m := NewMatcher(nil)
		m.UseLinearScan(linear)
		pathRule := Rule{ID: "p", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500,
			CallPath: "a#0/b#1"}
		if err := m.Install(pathRule); err != nil {
			t.Fatal(err)
		}

		hit := Message{Src: "a", Dst: "b", Type: OnRequest, RequestID: "test-1", CallPath: "a#0/b#1"}
		if d := m.Decide(hit); !d.Fired || d.Rule.ID != "p" {
			t.Fatalf("linear=%v: exact-path message decision = %+v", linear, d)
		}
		for _, miss := range []string{"a#0/b#0", "a#0", "a#0/b#1/c#0", ""} {
			msg := hit
			msg.CallPath = miss
			if d := m.Decide(msg); d.Matched || d.Fired {
				t.Fatalf("linear=%v: path %q matched %+v", linear, miss, d)
			}
		}

		// A path-less rule still matches every index, including none.
		m.Clear()
		if err := m.Install(Rule{ID: "any", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500}); err != nil {
			t.Fatal(err)
		}
		for _, path := range []string{"", "a#0/b#1", "x#9"} {
			msg := hit
			msg.CallPath = path
			if d := m.Decide(msg); !d.Fired {
				t.Fatalf("linear=%v: path-less rule missed index %q", linear, path)
			}
		}
	}
}

func TestValidateCallPath(t *testing.T) {
	good := Rule{ID: "r", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500,
		CallPath: "a#0/b#1"}
	if err := good.Validate(); err != nil {
		t.Fatalf("canonical callPath rejected: %v", err)
	}
	truncated := good
	truncated.CallPath = "a#0/…"
	if err := truncated.Validate(); err != nil {
		t.Fatalf("truncated-but-canonical callPath rejected: %v", err)
	}

	bad := good
	bad.CallPath = "not a call path"
	if err := bad.Validate(); err == nil {
		t.Error("non-canonical callPath must not validate")
	}
	trailing := good
	trailing.CallPath = "a#0/"
	if err := trailing.Validate(); err == nil {
		t.Error("trailing-slash callPath must not validate")
	}
	l4 := Rule{ID: "r", Src: "a", Dst: "b", Layer: LayerL4, Action: ActionSever,
		CallPath: "a#0"}
	if err := l4.Validate(); err == nil {
		t.Error("l4 rule with callPath must not validate")
	}
}
