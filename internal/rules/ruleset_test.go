package rules

import (
	"errors"
	"testing"
)

func rsRule(id string, delay int64) Rule {
	return Rule{ID: id, Src: "a", Dst: "b", Action: ActionDelay, Pattern: "test-*", DelayMillis: delay}
}

func TestRuleSetHashDeterministic(t *testing.T) {
	a := RuleSet{Generation: 1, Rules: []Rule{rsRule("r1", 10), rsRule("r2", 20)}}
	b := RuleSet{Generation: 99, Rules: []Rule{rsRule("r2", 20), rsRule("r1", 10)}}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash should ignore order and generation: %s != %s", a.Hash(), b.Hash())
	}
	c := RuleSet{Rules: []Rule{rsRule("r1", 10), rsRule("r2", 21)}}
	if a.Hash() == c.Hash() {
		t.Fatal("hash should change with content")
	}
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Fatal("canonical serialization should be order-independent")
	}
	empty := RuleSet{}
	if empty.Hash() == a.Hash() || empty.Hash() == "" {
		t.Fatalf("empty hash = %q", empty.Hash())
	}
}

func TestRuleSetValidate(t *testing.T) {
	if err := (RuleSet{TTLMillis: -1}).Validate(); err == nil {
		t.Fatal("negative TTL should be rejected")
	}
	bad := rsRule("r1", 0) // delay rule without interval
	if err := (RuleSet{Rules: []Rule{bad}}).Validate(); err == nil {
		t.Fatal("invalid rule should be rejected")
	}
	dup := RuleSet{Rules: []Rule{rsRule("r1", 10), rsRule("r1", 20)}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate IDs should be rejected")
	}
}

func TestApplyRuleSetSwapAndIdempotence(t *testing.T) {
	m := NewMatcher(nil)
	set := RuleSet{Generation: 3, Rules: []Rule{rsRule("r1", 10), rsRule("r2", 20)}}

	st, err := m.ApplyRuleSet(set, NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed || st.Generation != 3 || st.Rules != 2 || st.Hash != set.Hash() {
		t.Fatalf("first apply status = %+v", st)
	}
	rebuilds := m.Rebuilds()

	// Drive traffic so counters have state to preserve.
	d := m.Decide(Message{Src: "a", Dst: "b", Type: OnRequest, RequestID: "test-1"})
	if !d.Fired {
		t.Fatal("rule should fire")
	}

	// Applying the identical generation again is a no-op: no swap, no
	// rebuild, counters intact.
	st2, err := m.ApplyRuleSet(set, NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Changed || st2.Generation != 3 {
		t.Fatalf("idempotent re-apply status = %+v", st2)
	}
	if m.Rebuilds() != rebuilds {
		t.Fatalf("re-apply rebuilt the matcher: %d -> %d", rebuilds, m.Rebuilds())
	}
	stats := m.RuleStats()
	if len(stats) != 2 || stats[0].Fired+stats[1].Fired != 1 {
		t.Fatalf("counters lost on re-apply: %+v", stats)
	}

	// A higher generation with identical content adopts the generation
	// without a rebuild and without touching counters.
	st3, err := m.ApplyRuleSet(RuleSet{Generation: 7, Rules: set.Rules}, NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Changed || st3.Generation != 7 || m.Rebuilds() != rebuilds {
		t.Fatalf("same-content upgrade status = %+v rebuilds=%d", st3, m.Rebuilds())
	}
	if stats := m.RuleStats(); stats[0].Fired+stats[1].Fired != 1 {
		t.Fatalf("counters lost on generation adoption: %+v", stats)
	}

	// New content swaps atomically, carrying counters for surviving IDs.
	st4, err := m.ApplyRuleSet(RuleSet{Generation: 8, Rules: []Rule{rsRule("r1", 10)}}, NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !st4.Changed || st4.Rules != 1 || m.Rebuilds() != rebuilds+1 {
		t.Fatalf("content swap status = %+v rebuilds=%d", st4, m.Rebuilds())
	}
}

func TestApplyRuleSetOrdering(t *testing.T) {
	m := NewMatcher(nil)
	if _, err := m.ApplyRuleSet(RuleSet{Generation: 5, Rules: []Rule{rsRule("r1", 10)}}, NoMatch); err != nil {
		t.Fatal(err)
	}

	// Older generation: rejected as stale.
	_, err := m.ApplyRuleSet(RuleSet{Generation: 4, Rules: nil}, NoMatch)
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("want ErrStaleGeneration, got %v", err)
	}

	// Same generation, different content: split-brain conflict.
	_, err = m.ApplyRuleSet(RuleSet{Generation: 5, Rules: []Rule{rsRule("r9", 10)}}, NoMatch)
	if !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("want ErrGenerationConflict, got %v", err)
	}

	// If-Match CAS: wrong precondition fails...
	_, err = m.ApplyRuleSet(RuleSet{Generation: 2, Rules: nil}, 4)
	if !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("want ErrPreconditionFailed, got %v", err)
	}
	// ...and a correct one wins even with a lower generation (a new
	// control plane taking over an agent it has observed).
	st, err := m.ApplyRuleSet(RuleSet{Generation: 2, Rules: nil}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed || st.Generation != 2 || st.Rules != 0 {
		t.Fatalf("takeover status = %+v", st)
	}
}

func TestImperativeOpsBumpGeneration(t *testing.T) {
	m := NewMatcher(nil)
	if g := m.Generation(); g != 0 {
		t.Fatalf("fresh matcher generation = %d", g)
	}
	emptyHash := m.Hash()
	if emptyHash == "" {
		t.Fatal("fresh matcher should have a content hash")
	}

	if err := m.Install(rsRule("r1", 10)); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(); g != 1 {
		t.Fatalf("generation after install = %d", g)
	}
	if m.Hash() == emptyHash {
		t.Fatal("hash should change with content")
	}
	if !m.Remove("r1") {
		t.Fatal("remove failed")
	}
	if g := m.Generation(); g != 2 {
		t.Fatalf("generation after remove = %d", g)
	}
	if m.Hash() != emptyHash {
		t.Fatal("hash should return to the empty hash")
	}
	_ = m.Install(rsRule("r2", 10))
	m.Clear()
	if g := m.Generation(); g != 4 {
		t.Fatalf("generation after clear = %d", g)
	}

	set := m.RuleSet()
	if set.Generation != 4 || len(set.Rules) != 0 {
		t.Fatalf("RuleSet() = %+v", set)
	}
}
