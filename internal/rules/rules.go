// Package rules defines Gremlin's fault-injection rules: the interface the
// control plane uses to program the data plane (Table 2 of the paper).
//
// A rule instructs a Gremlin agent to inspect messages flowing from a source
// microservice to a destination microservice and, when a message matches the
// rule's criteria (message type, request-ID pattern, probability), apply one
// of three primitive fault actions:
//
//   - Abort: do not forward the message; return an application-level error
//     code to the source (or sever the connection when ErrorCode == -1,
//     emulating a crashed process).
//   - Delay: forward the message only after a fixed interval, emulating an
//     overloaded or slow service/network.
//   - Modify: rewrite matched bytes in the message body, emulating
//     corrupted or unexpected responses.
//
// Complex failure scenarios (Overload, Crash, Partition, ...) are composed
// from these primitives by the recipe layer (internal/core).
package rules

import (
	"errors"
	"fmt"
	"time"

	"gremlin/internal/pattern"
	"gremlin/internal/trace"
)

// Action identifies a primitive fault-injection action.
type Action string

// The three fault primitives exposed by the HTTP data plane (paper
// Table 2).
const (
	ActionAbort  Action = "abort"
	ActionDelay  Action = "delay"
	ActionModify Action = "modify"
)

// Stream fault primitives, valid only on LayerL4 rules. On the L4 plane
// ActionAbort means connect-refuse and ActionDelay means connect-delay;
// the actions below act on the established byte stream.
const (
	// ActionSever terminates the connection mid-stream (RST or FIN,
	// per SeverMode), optionally after AbortAfterBytes have been relayed
	// in the rule's direction.
	ActionSever Action = "sever"
	// ActionHalfOpen stops relaying the rule's direction while keeping
	// both sockets open — the classic half-open connection.
	ActionHalfOpen Action = "halfopen"
	// ActionThrottle paces the rule's direction to RateBytesPerSec with
	// a token bucket.
	ActionThrottle Action = "throttle"
	// ActionJitter sleeps DelayMillis before relaying each read chunk in
	// the rule's direction.
	ActionJitter Action = "jitter"
)

// Layer selects which data plane a rule programs: the HTTP/1.1
// request/reply proxy or the L4 byte-stream relay. Absent (empty) means
// LayerHTTP, so rule sets written before the L4 plane existed parse and
// behave exactly as before.
type Layer string

// Data-plane layers understood by the agents.
const (
	LayerHTTP Layer = "http"
	LayerL4   Layer = "l4"
)

// MessageType selects which half of a request/response exchange a rule
// applies to (the paper's "On" parameter).
type MessageType string

// Message types understood by the agents.
const (
	OnRequest  MessageType = "request"
	OnResponse MessageType = "response"
)

// AbortSeverConnection is the sentinel ErrorCode instructing the agent to
// terminate the connection at the TCP level without returning an
// application-level error, emulating an abrupt process crash (paper §5).
const AbortSeverConnection = -1

// Rule is one fault-injection rule as installed on a Gremlin agent.
//
// Src and Dst name logical microservices. Pattern matches against the
// request ID propagated in message headers; it supports glob syntax
// ("test-*", "?" for one character) or, with the "re:" prefix, a Go regular
// expression. Probability in (0, 1] gates application per matching message;
// 0 is normalized to 1 (always apply) for parity with the paper's recipes,
// which omit it for deterministic faults.
type Rule struct {
	// ID uniquely identifies the rule on an agent. Assigned by the control
	// plane; agents reject duplicate IDs.
	ID string `json:"id"`

	// Src is the logical name of the calling microservice whose outbound
	// messages this rule inspects.
	Src string `json:"src"`

	// Dst is the logical name of the destination microservice.
	Dst string `json:"dst"`

	// On selects request or response messages. Defaults to OnRequest.
	// On LayerL4 rules the same field names a relay direction: OnRequest
	// is the downstream→upstream byte stream, OnResponse the
	// upstream→downstream one.
	On MessageType `json:"on,omitempty"`

	// Layer selects the data plane the rule programs: LayerHTTP (the
	// request/reply proxy) or LayerL4 (the stream relay). Empty means
	// LayerHTTP for compatibility with pre-L4 rule sets.
	Layer Layer `json:"layer,omitempty"`

	// Action is the fault primitive to apply.
	Action Action `json:"action"`

	// Pattern matches request IDs (glob, or "re:<regexp>"). Empty matches
	// every message.
	Pattern string `json:"pattern,omitempty"`

	// CallPath, when non-empty, restricts the rule to messages whose
	// execution index (the causal call path propagated in X-Gremlin-EI,
	// canonical wire form) equals it exactly. Absent means match-all, so
	// rule sets written before execution indexing existed parse, match,
	// and marshal exactly as before. Only meaningful on LayerHTTP rules —
	// the L4 relay decides per connection, before any request flows.
	CallPath string `json:"callPath,omitempty"`

	// Probability in (0,1] of applying the fault to a matching message.
	// Zero is treated as 1.
	Probability float64 `json:"probability,omitempty"`

	// ErrorCode is the HTTP status returned to Src for Abort rules, or
	// AbortSeverConnection to sever the connection.
	ErrorCode int `json:"errorCode,omitempty"`

	// DelayMillis is the injected delay for Delay rules, in milliseconds.
	DelayMillis int64 `json:"delayMillis,omitempty"`

	// SearchBytes is the byte pattern Modify rules search for in the body.
	SearchBytes string `json:"searchBytes,omitempty"`

	// ReplaceBytes is the replacement for SearchBytes in Modify rules.
	ReplaceBytes string `json:"replaceBytes,omitempty"`

	// RateBytesPerSec is the token-bucket pacing rate for L4 Throttle
	// rules, in bytes per second.
	RateBytesPerSec int64 `json:"rateBytesPerSec,omitempty"`

	// AbortAfterBytes delays L4 Sever/HalfOpen actuation until this many
	// bytes have been relayed in the rule's direction. Zero fires the
	// fault before the first byte.
	AbortAfterBytes int64 `json:"abortAfterBytes,omitempty"`

	// SeverMode selects how an L4 Sever rule terminates the connection:
	// SeverRST (default) resets it abruptly, SeverFIN closes it cleanly
	// mid-stream.
	SeverMode string `json:"severMode,omitempty"`
}

// Sever modes for L4 ActionSever rules.
const (
	SeverRST = "rst"
	SeverFIN = "fin"
)

// Delay returns the rule's delay as a time.Duration.
func (r Rule) Delay() time.Duration { return time.Duration(r.DelayMillis) * time.Millisecond }

// EffectiveProbability returns the probability with the zero-value
// normalization applied.
func (r Rule) EffectiveProbability() float64 {
	if r.Probability == 0 {
		return 1
	}
	return r.Probability
}

// EffectiveLayer returns the rule's data-plane layer with the empty
// value normalized to LayerHTTP.
func (r Rule) EffectiveLayer() Layer {
	if r.Layer == "" {
		return LayerHTTP
	}
	return r.Layer
}

// EffectiveSeverMode returns the sever mode with the empty value
// normalized to SeverRST.
func (r Rule) EffectiveSeverMode() string {
	if r.SeverMode == "" {
		return SeverRST
	}
	return r.SeverMode
}

// String renders a compact human-readable description of the rule.
func (r Rule) String() string {
	switch r.Action {
	case ActionAbort:
		if r.EffectiveLayer() == LayerL4 {
			return fmt.Sprintf("refuse[%s] l4 %s->%s pattern=%q p=%.2f",
				r.ID, r.Src, r.Dst, r.Pattern, r.EffectiveProbability())
		}
		return fmt.Sprintf("abort[%s] %s->%s on=%s pattern=%q p=%.2f code=%d",
			r.ID, r.Src, r.Dst, r.on(), r.Pattern, r.EffectiveProbability(), r.ErrorCode)
	case ActionDelay:
		if r.EffectiveLayer() == LayerL4 {
			return fmt.Sprintf("connect-delay[%s] l4 %s->%s pattern=%q p=%.2f interval=%s",
				r.ID, r.Src, r.Dst, r.Pattern, r.EffectiveProbability(), r.Delay())
		}
		return fmt.Sprintf("delay[%s] %s->%s on=%s pattern=%q p=%.2f interval=%s",
			r.ID, r.Src, r.Dst, r.on(), r.Pattern, r.EffectiveProbability(), r.Delay())
	case ActionModify:
		return fmt.Sprintf("modify[%s] %s->%s on=%s pattern=%q p=%.2f %q->%q",
			r.ID, r.Src, r.Dst, r.on(), r.Pattern, r.EffectiveProbability(), r.SearchBytes, r.ReplaceBytes)
	case ActionSever:
		return fmt.Sprintf("sever[%s] l4 %s->%s on=%s mode=%s after=%dB p=%.2f",
			r.ID, r.Src, r.Dst, r.on(), r.EffectiveSeverMode(), r.AbortAfterBytes, r.EffectiveProbability())
	case ActionHalfOpen:
		return fmt.Sprintf("halfopen[%s] l4 %s->%s on=%s after=%dB p=%.2f",
			r.ID, r.Src, r.Dst, r.on(), r.AbortAfterBytes, r.EffectiveProbability())
	case ActionThrottle:
		return fmt.Sprintf("throttle[%s] l4 %s->%s on=%s rate=%dB/s p=%.2f",
			r.ID, r.Src, r.Dst, r.on(), r.RateBytesPerSec, r.EffectiveProbability())
	case ActionJitter:
		return fmt.Sprintf("jitter[%s] l4 %s->%s on=%s interval=%s p=%.2f",
			r.ID, r.Src, r.Dst, r.on(), r.Delay(), r.EffectiveProbability())
	default:
		return fmt.Sprintf("invalid rule[%s] action=%q", r.ID, r.Action)
	}
}

func (r Rule) on() MessageType {
	if r.On == "" {
		return OnRequest
	}
	return r.On
}

// Validation errors returned by Validate.
var (
	ErrMissingID     = errors.New("rules: rule has no ID")
	ErrMissingSrc    = errors.New("rules: rule has no source service")
	ErrMissingDst    = errors.New("rules: rule has no destination service")
	ErrBadAction     = errors.New("rules: unknown action")
	ErrBadOn         = errors.New("rules: unknown message type")
	ErrBadProbabilty = errors.New("rules: probability outside [0,1]")
	ErrBadErrorCode  = errors.New("rules: abort error code must be -1 or a 4xx/5xx HTTP status")
	ErrBadDelay      = errors.New("rules: delay rule needs a positive interval")
	ErrBadModify     = errors.New("rules: modify rule needs non-empty search bytes")
	ErrBadLayer      = errors.New("rules: unknown layer")
	ErrLayerAction   = errors.New("rules: action not valid on this layer")
	ErrBadRate       = errors.New("rules: throttle rule needs a positive rateBytesPerSec")
	ErrBadSeverMode  = errors.New("rules: sever mode must be rst or fin")
	ErrBadAfterBytes = errors.New("rules: abortAfterBytes must be non-negative")
	ErrBadL4Abort    = errors.New("rules: l4 abort (connect-refuse) takes no errorCode")
	ErrBadCallPath   = errors.New("rules: callPath must be a canonical execution index")
	ErrL4CallPath    = errors.New("rules: l4 rules take no callPath (connections carry no execution index)")
)

// Validate checks the rule for structural problems. Agents reject invalid
// rules; the control plane validates before shipping.
func (r Rule) Validate() error {
	if r.ID == "" {
		return ErrMissingID
	}
	if r.Src == "" {
		return fmt.Errorf("%w (rule %s)", ErrMissingSrc, r.ID)
	}
	if r.Dst == "" {
		return fmt.Errorf("%w (rule %s)", ErrMissingDst, r.ID)
	}
	switch r.on() {
	case OnRequest, OnResponse:
	default:
		return fmt.Errorf("%w %q (rule %s)", ErrBadOn, r.On, r.ID)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("%w: %v (rule %s)", ErrBadProbabilty, r.Probability, r.ID)
	}
	if _, err := pattern.Compile(r.Pattern); err != nil {
		return fmt.Errorf("rules: bad pattern %q (rule %s): %w", r.Pattern, r.ID, err)
	}
	switch r.EffectiveLayer() {
	case LayerHTTP:
		return r.validateHTTP()
	case LayerL4:
		return r.validateL4()
	default:
		return fmt.Errorf("%w %q (rule %s)", ErrBadLayer, r.Layer, r.ID)
	}
}

// validateHTTP checks the parameters of a request/reply-plane rule. The
// stream-only actions and knobs are rejected so a misrouted L4 rule
// fails loudly at install time instead of silently never matching.
func (r Rule) validateHTTP() error {
	if r.RateBytesPerSec != 0 || r.AbortAfterBytes != 0 || r.SeverMode != "" {
		return fmt.Errorf("%w: http rules take no l4 stream parameters (rule %s)", ErrLayerAction, r.ID)
	}
	if r.CallPath != "" && trace.CanonicalEI(r.CallPath) != r.CallPath {
		return fmt.Errorf("%w: %q (rule %s)", ErrBadCallPath, r.CallPath, r.ID)
	}
	switch r.Action {
	case ActionAbort:
		if r.ErrorCode != AbortSeverConnection && (r.ErrorCode < 400 || r.ErrorCode > 599) {
			return fmt.Errorf("%w: %d (rule %s)", ErrBadErrorCode, r.ErrorCode, r.ID)
		}
	case ActionDelay:
		if r.DelayMillis <= 0 {
			return fmt.Errorf("%w (rule %s)", ErrBadDelay, r.ID)
		}
	case ActionModify:
		if r.SearchBytes == "" {
			return fmt.Errorf("%w (rule %s)", ErrBadModify, r.ID)
		}
	case ActionSever, ActionHalfOpen, ActionThrottle, ActionJitter:
		return fmt.Errorf("%w: %q requires layer %q (rule %s)", ErrLayerAction, r.Action, LayerL4, r.ID)
	default:
		return fmt.Errorf("%w %q (rule %s)", ErrBadAction, r.Action, r.ID)
	}
	return nil
}

// validateL4 checks the parameters of a stream-plane rule. Abort and
// Delay keep their names but mean connect-refuse and connect-delay;
// Modify has no meaning on an opaque byte stream.
func (r Rule) validateL4() error {
	if r.CallPath != "" {
		return fmt.Errorf("%w (rule %s)", ErrL4CallPath, r.ID)
	}
	if r.AbortAfterBytes < 0 {
		return fmt.Errorf("%w: %d (rule %s)", ErrBadAfterBytes, r.AbortAfterBytes, r.ID)
	}
	switch r.Action {
	case ActionAbort:
		if r.ErrorCode != 0 && r.ErrorCode != AbortSeverConnection {
			return fmt.Errorf("%w: got %d (rule %s)", ErrBadL4Abort, r.ErrorCode, r.ID)
		}
	case ActionDelay, ActionJitter:
		if r.DelayMillis <= 0 {
			return fmt.Errorf("%w (rule %s)", ErrBadDelay, r.ID)
		}
	case ActionSever:
		switch r.EffectiveSeverMode() {
		case SeverRST, SeverFIN:
		default:
			return fmt.Errorf("%w: %q (rule %s)", ErrBadSeverMode, r.SeverMode, r.ID)
		}
	case ActionHalfOpen:
	case ActionThrottle:
		if r.RateBytesPerSec <= 0 {
			return fmt.Errorf("%w (rule %s)", ErrBadRate, r.ID)
		}
	case ActionModify:
		return fmt.Errorf("%w: %q has no meaning on an opaque stream (rule %s)", ErrLayerAction, r.Action, r.ID)
	default:
		return fmt.Errorf("%w %q (rule %s)", ErrBadAction, r.Action, r.ID)
	}
	return nil
}

// ValidateAll validates a batch of rules and additionally rejects duplicate
// rule IDs within the batch.
func ValidateAll(rs []Rule) error {
	seen := make(map[string]bool, len(rs))
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.ID] {
			return fmt.Errorf("rules: duplicate rule ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}
