package rules

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMatcherDecideInstallRemoveClearStress hammers the lock-free Decide
// path from many goroutines while rules are concurrently installed,
// removed, and cleared. Run with -race; the invariant is that every
// decision observes a consistent snapshot (a fired rule is always fully
// formed) and nothing panics or deadlocks.
func TestMatcherDecideInstallRemoveClearStress(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(11)))
	if err := m.Install(validAbort()); err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 8
		decisions = 2000
		mutations = 300
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < decisions; i++ {
				d := m.Decide(Message{
					Src: "serviceA", Dst: "serviceB", Type: OnRequest,
					RequestID: fmt.Sprintf("test-%d-%d", w, i),
				})
				if d.Fired && d.Rule.ID == "" {
					t.Error("fired decision carries a zero rule")
					return
				}
				// Also exercise the other read paths.
				if i%64 == 0 {
					m.Len()
					m.List()
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < mutations; i++ {
			extra := validDelay()
			extra.ID = fmt.Sprintf("extra-%d", i)
			if err := m.Install(extra); err != nil {
				t.Errorf("install: %v", err)
				return
			}
			if i%3 == 0 {
				if !m.Remove(extra.ID) {
					t.Errorf("remove %s reported missing", extra.ID)
					return
				}
			}
			if i%97 == 0 {
				m.Clear()
				if err := m.Install(validAbort()); err != nil {
					t.Errorf("reinstall after clear: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	if !stop.Load() {
		t.Fatal("mutator did not finish")
	}
}

// TestLinearScanDecisionsMatchIndexed checks the ablation mode is
// decision-equivalent to the indexed fast path across routes, directions,
// and pattern forms.
func TestLinearScanDecisionsMatchIndexed(t *testing.T) {
	build := func(linear bool) *Matcher {
		m := NewMatcher(rand.New(rand.NewSource(1)))
		m.UseLinearScan(linear)
		var batch []Rule
		for i := 0; i < 20; i++ {
			r := validDelay()
			r.ID = fmt.Sprintf("r%d", i)
			r.Src = fmt.Sprintf("svc%d", i%4)
			r.Dst = fmt.Sprintf("dst%d", i%3)
			if i%2 == 0 {
				r.On = OnResponse
			}
			r.Pattern = fmt.Sprintf("test-%d-*", i%5)
			batch = append(batch, r)
		}
		if err := m.Install(batch...); err != nil {
			t.Fatal(err)
		}
		return m
	}
	indexed, linear := build(false), build(true)

	for src := 0; src < 5; src++ {
		for dst := 0; dst < 4; dst++ {
			for _, typ := range []MessageType{OnRequest, OnResponse} {
				for pat := 0; pat < 6; pat++ {
					msg := Message{
						Src:       fmt.Sprintf("svc%d", src),
						Dst:       fmt.Sprintf("dst%d", dst),
						Type:      typ,
						RequestID: fmt.Sprintf("test-%d-abc", pat),
					}
					a, b := indexed.Decide(msg), linear.Decide(msg)
					if a.Matched != b.Matched || a.Fired != b.Fired || a.Rule.ID != b.Rule.ID {
						t.Fatalf("divergence on %+v: indexed=%+v linear=%+v", msg, a, b)
					}
				}
			}
		}
	}
}

// TestIndexedDecidePreservesInsertionOrder pins first-match-wins semantics
// within one (src, dst, type) bucket on the indexed path.
func TestIndexedDecidePreservesInsertionOrder(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	first := validAbort()
	second := validAbort()
	second.ID = "second"
	second.ErrorCode = 404
	if err := m.Install(first, second); err != nil {
		t.Fatal(err)
	}
	d := m.Decide(Message{Src: "serviceA", Dst: "serviceB", Type: OnRequest, RequestID: "test-1"})
	if !d.Fired || d.Rule.ID != "r1" {
		t.Fatalf("Decide = %+v, want first installed rule r1", d)
	}
	if !m.Remove("r1") {
		t.Fatal("remove r1")
	}
	d = m.Decide(Message{Src: "serviceA", Dst: "serviceB", Type: OnRequest, RequestID: "test-1"})
	if !d.Fired || d.Rule.ID != "second" {
		t.Fatalf("Decide after remove = %+v, want rule second", d)
	}
}
