package rules

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func validAbort() Rule {
	return Rule{
		ID:        "r1",
		Src:       "serviceA",
		Dst:       "serviceB",
		Action:    ActionAbort,
		Pattern:   "test-*",
		ErrorCode: 503,
	}
}

func validDelay() Rule {
	return Rule{
		ID:          "r2",
		Src:         "serviceA",
		Dst:         "serviceB",
		Action:      ActionDelay,
		Pattern:     "test-*",
		DelayMillis: 100,
	}
}

func validModify() Rule {
	return Rule{
		ID:           "r3",
		Src:          "serviceA",
		Dst:          "serviceB",
		On:           OnResponse,
		Action:       ActionModify,
		SearchBytes:  "key",
		ReplaceBytes: "badkey",
	}
}

func TestValidateAcceptsValidRules(t *testing.T) {
	for _, r := range []Rule{validAbort(), validDelay(), validModify()} {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", r.ID, err)
		}
	}
}

func TestValidateSeverConnection(t *testing.T) {
	r := validAbort()
	r.ErrorCode = AbortSeverConnection
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Rule)
		wantErr error
	}{
		{"missing id", func(r *Rule) { r.ID = "" }, ErrMissingID},
		{"missing src", func(r *Rule) { r.Src = "" }, ErrMissingSrc},
		{"missing dst", func(r *Rule) { r.Dst = "" }, ErrMissingDst},
		{"bad action", func(r *Rule) { r.Action = "explode" }, ErrBadAction},
		{"bad on", func(r *Rule) { r.On = "sideways" }, ErrBadOn},
		{"negative probability", func(r *Rule) { r.Probability = -0.5 }, ErrBadProbabilty},
		{"probability > 1", func(r *Rule) { r.Probability = 1.5 }, ErrBadProbabilty},
		{"abort code too low", func(r *Rule) { r.ErrorCode = 200 }, ErrBadErrorCode},
		{"abort code too high", func(r *Rule) { r.ErrorCode = 600 }, ErrBadErrorCode},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validAbort()
			tt.mutate(&r)
			err := r.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateDelayNeedsInterval(t *testing.T) {
	r := validDelay()
	r.DelayMillis = 0
	if !errors.Is(r.Validate(), ErrBadDelay) {
		t.Fatal("want ErrBadDelay")
	}
	r.DelayMillis = -5
	if !errors.Is(r.Validate(), ErrBadDelay) {
		t.Fatal("want ErrBadDelay for negative interval")
	}
}

func TestValidateModifyNeedsSearch(t *testing.T) {
	r := validModify()
	r.SearchBytes = ""
	if !errors.Is(r.Validate(), ErrBadModify) {
		t.Fatal("want ErrBadModify")
	}
}

func TestValidateBadRegexpPattern(t *testing.T) {
	r := validAbort()
	r.Pattern = "re:["
	if err := r.Validate(); err == nil {
		t.Fatal("want error for invalid regexp")
	}
}

func TestValidateAll(t *testing.T) {
	if err := ValidateAll([]Rule{validAbort(), validDelay()}); err != nil {
		t.Fatalf("ValidateAll: %v", err)
	}
	dup := validDelay()
	dup.ID = "r1"
	if err := ValidateAll([]Rule{validAbort(), dup}); err == nil {
		t.Fatal("want duplicate-ID error")
	}
	bad := validAbort()
	bad.Action = "nope"
	if err := ValidateAll([]Rule{bad}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestDelayAccessor(t *testing.T) {
	r := validDelay()
	if got := r.Delay(); got != 100*time.Millisecond {
		t.Fatalf("Delay = %v", got)
	}
}

func TestEffectiveProbability(t *testing.T) {
	r := validAbort()
	if got := r.EffectiveProbability(); got != 1 {
		t.Fatalf("zero probability should normalize to 1, got %v", got)
	}
	r.Probability = 0.25
	if got := r.EffectiveProbability(); got != 0.25 {
		t.Fatalf("got %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		rule Rule
		want string
	}{
		{validAbort(), "abort["},
		{validDelay(), "delay["},
		{validModify(), "modify["},
		{Rule{ID: "x", Action: "zap"}, "invalid rule"},
	}
	for _, tt := range tests {
		if got := tt.rule.String(); !strings.Contains(got, tt.want) {
			t.Errorf("String() = %q, want containing %q", got, tt.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := func(id, src, dst, pattern string, delay int64, code int, prob float64) bool {
		in := Rule{
			ID: id, Src: src, Dst: dst,
			Action:      ActionDelay,
			Pattern:     pattern,
			Probability: prob,
			DelayMillis: delay,
			ErrorCode:   code,
		}
		b, err := json.Marshal(in)
		if err != nil {
			return false
		}
		var out Rule
		if err := json.Unmarshal(b, &out); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJSONOmitsEmptyFields(t *testing.T) {
	b, err := json.Marshal(Rule{ID: "a", Src: "s", Dst: "d", Action: ActionAbort, ErrorCode: 503})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, forbidden := range []string{`"delayMillis"`, `"searchBytes"`, `"replaceBytes"`, `"pattern"`, `"probability"`, `"on"`} {
		if strings.Contains(s, forbidden) {
			t.Errorf("marshaled rule contains %q: %s", forbidden, s)
		}
	}
}
