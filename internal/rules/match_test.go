package rules

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func msg(src, dst string, typ MessageType, id string) Message {
	return Message{Src: src, Dst: dst, Type: typ, RequestID: id}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(Rule{}); err == nil {
		t.Fatal("want error compiling empty rule")
	}
}

func TestCompiledRuleMatches(t *testing.T) {
	c, err := Compile(validAbort()) // serviceA -> serviceB, on request, pattern test-*
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		m    Message
		want bool
	}{
		{"exact match", msg("serviceA", "serviceB", OnRequest, "test-1"), true},
		{"long id", msg("serviceA", "serviceB", OnRequest, "test-abc-123"), true},
		{"wrong src", msg("serviceX", "serviceB", OnRequest, "test-1"), false},
		{"wrong dst", msg("serviceA", "serviceX", OnRequest, "test-1"), false},
		{"wrong direction", msg("serviceA", "serviceB", OnResponse, "test-1"), false},
		{"non-matching id", msg("serviceA", "serviceB", OnRequest, "prod-1"), false},
		{"empty id", msg("serviceA", "serviceB", OnRequest, ""), false},
		{"prefix only inside", msg("serviceA", "serviceB", OnRequest, "xtest-1"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Matches(tt.m); got != tt.want {
				t.Fatalf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPatternForms(t *testing.T) {
	tests := []struct {
		pattern string
		id      string
		want    bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"test-?", "test-1", true},
		{"test-?", "test-12", false},
		{"re:^test-[0-9]+$", "test-42", true},
		{"re:^test-[0-9]+$", "test-4a", false},
		{"exact", "exact", true},
		{"exact", "exact2", false},
		{"a.b", "a.b", true},
		{"a.b", "axb", false}, // '.' must be literal in globs
	}
	for _, tt := range tests {
		t.Run(tt.pattern+"/"+tt.id, func(t *testing.T) {
			r := validAbort()
			r.Pattern = tt.pattern
			c, err := Compile(r)
			if err != nil {
				t.Fatal(err)
			}
			m := msg("serviceA", "serviceB", OnRequest, tt.id)
			if got := c.Matches(m); got != tt.want {
				t.Fatalf("pattern %q vs id %q = %v, want %v", tt.pattern, tt.id, got, tt.want)
			}
		})
	}
}

func TestMatcherInstallListRemoveClear(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	if err := m.Install(validAbort(), validDelay()); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if got := m.List(); len(got) != 2 || got[0].ID != "r1" || got[1].ID != "r2" {
		t.Fatalf("List = %+v", got)
	}
	if !m.Remove("r1") {
		t.Fatal("Remove(r1) = false")
	}
	if m.Remove("r1") {
		t.Fatal("second Remove(r1) = true")
	}
	if n := m.Clear(); n != 1 {
		t.Fatalf("Clear = %d, want 1", n)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after clear = %d", m.Len())
	}
}

func TestMatcherRejectsDuplicateIDs(t *testing.T) {
	m := NewMatcher(nil)
	if err := m.Install(validAbort()); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(validAbort()); err == nil {
		t.Fatal("want error installing duplicate ID")
	}
	a, b := validAbort(), validDelay()
	b.ID = a.ID
	m2 := NewMatcher(nil)
	if err := m2.Install(a, b); err == nil {
		t.Fatal("want error for duplicate IDs within batch")
	}
	if m2.Len() != 0 {
		t.Fatal("failed batch must not partially install")
	}
}

func TestMatcherRejectsInvalidBatchAtomically(t *testing.T) {
	m := NewMatcher(nil)
	bad := validDelay()
	bad.DelayMillis = 0
	if err := m.Install(validAbort(), bad); err == nil {
		t.Fatal("want error")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after failed install, want 0", m.Len())
	}
}

func TestDecideFirstMatchWins(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	r1 := validAbort()
	r2 := validAbort()
	r2.ID = "other"
	r2.ErrorCode = 404
	if err := m.Install(r1, r2); err != nil {
		t.Fatal(err)
	}
	d := m.Decide(msg("serviceA", "serviceB", OnRequest, "test-1"))
	if !d.Fired || !d.Matched {
		t.Fatalf("Decide = %+v, want fired", d)
	}
	if d.Rule.ID != "r1" {
		t.Fatalf("matched rule %q, want r1 (insertion order)", d.Rule.ID)
	}
}

func TestDecideNoMatch(t *testing.T) {
	m := NewMatcher(nil)
	if err := m.Install(validAbort()); err != nil {
		t.Fatal(err)
	}
	d := m.Decide(msg("serviceA", "serviceB", OnRequest, "prod-1"))
	if d.Matched || d.Fired {
		t.Fatalf("Decide = %+v, want no match", d)
	}
}

func TestDecideProbabilitySampling(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(42)))
	r := validAbort()
	r.Probability = 0.25
	if err := m.Install(r); err != nil {
		t.Fatal(err)
	}
	const n = 10000
	fired := 0
	for i := 0; i < n; i++ {
		d := m.Decide(msg("serviceA", "serviceB", OnRequest, "test-"+strconv.Itoa(i)))
		if !d.Matched {
			t.Fatal("expected match")
		}
		if d.Fired {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("fired fraction = %v, want ~0.25", frac)
	}
}

func TestDecideFallsThroughToLaterRule(t *testing.T) {
	// The Overload recipe installs Abort(p=0.25) then Delay(p=0.75); when the
	// abort does not fire the delay rule must still be considered.
	m := NewMatcher(rand.New(rand.NewSource(7)))
	abort := validAbort()
	abort.Probability = 0.25
	delay := validDelay()
	delay.Probability = 1 // fires whenever reached
	if err := m.Install(abort, delay); err != nil {
		t.Fatal(err)
	}
	counts := map[Action]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		d := m.Decide(msg("serviceA", "serviceB", OnRequest, "test-x"))
		if !d.Fired {
			t.Fatal("one of the two rules should always fire")
		}
		counts[d.Rule.Action]++
	}
	abortFrac := float64(counts[ActionAbort]) / n
	if abortFrac < 0.22 || abortFrac > 0.28 {
		t.Fatalf("abort fraction = %v, want ~0.25", abortFrac)
	}
	if counts[ActionDelay] != n-counts[ActionAbort] {
		t.Fatal("delay should absorb the remainder")
	}
}

func TestMatcherConcurrentDecide(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(3)))
	r := validAbort()
	r.Probability = 0.5
	if err := m.Install(r); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Decide(msg("serviceA", "serviceB", OnRequest, fmt.Sprintf("test-%d-%d", w, i)))
			}
		}(w)
	}
	// Concurrent mutation.
	for i := 0; i < 50; i++ {
		extra := validDelay()
		extra.ID = fmt.Sprintf("extra-%d", i)
		if err := m.Install(extra); err != nil {
			t.Fatal(err)
		}
		m.Remove(extra.ID)
	}
	wg.Wait()
}

func TestCompileArbitraryPatternsProperty(t *testing.T) {
	f := func(pat, id string) bool {
		r := validAbort()
		r.Pattern = pat
		c, err := Compile(r)
		if err != nil {
			// Only "re:" patterns may fail to compile.
			return len(pat) >= 3 && pat[:3] == "re:"
		}
		c.Matches(msg("serviceA", "serviceB", OnRequest, id)) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatcherDecide(t *testing.T) {
	m := NewMatcher(nil)
	d := m.Decide(msg("a", "b", OnRequest, "test-1"))
	if d.Matched || d.Fired {
		t.Fatalf("empty matcher Decide = %+v", d)
	}
}

func TestFastPathSemanticsUnchanged(t *testing.T) {
	// Identical decisions with and without the prefix fast path.
	mk := func(fast bool) *Matcher {
		m := NewMatcher(rand.New(rand.NewSource(1)))
		m.UseLiteralPrefixFastPath(fast)
		r1 := validAbort() // pattern test-*
		r2 := validDelay()
		r2.Pattern = "re:^canary-[0-9]+$"
		r3 := validModify()
		r3.ID = "r3b"
		r3.On = OnRequest
		r3.Pattern = "" // match-all
		if err := m.Install(r1, r2, r3); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, fast := mk(false), mk(true)
	ids := []string{"test-1", "canary-5", "prod-9", "", "test-", "canary-x"}
	for _, id := range ids {
		msg := msg("serviceA", "serviceB", OnRequest, id)
		a, b := plain.Decide(msg), fast.Decide(msg)
		if a.Fired != b.Fired || a.Matched != b.Matched || a.Rule.ID != b.Rule.ID {
			t.Fatalf("id %q: plain=%+v fast=%+v", id, a, b)
		}
	}
}

func TestFastPathSkipsNonMatchingPrefixes(t *testing.T) {
	m := NewMatcher(nil)
	m.UseLiteralPrefixFastPath(true)
	r := validAbort() // test-*
	if err := m.Install(r); err != nil {
		t.Fatal(err)
	}
	if d := m.Decide(msg("serviceA", "serviceB", OnRequest, "prod-1")); d.Matched {
		t.Fatal("prefix-rejected rule must not match")
	}
	if d := m.Decide(msg("serviceA", "serviceB", OnRequest, "test-1")); !d.Fired {
		t.Fatal("matching rule must still fire")
	}
}

func TestRuleStatsCountMatchesAndFires(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	certain := validAbort() // fires every match (probability defaults to 1)
	never := validDelay()
	never.Probability = 0.000001 // matches but essentially never fires
	if err := m.Install(certain, never); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		m.Decide(msg("serviceA", "serviceB", OnRequest, "test-1"))
	}
	m.Decide(msg("serviceX", "serviceB", OnRequest, "test-1")) // matches nothing

	stats := m.RuleStats()
	if len(stats) != 2 {
		t.Fatalf("got %d stats, want 2", len(stats))
	}
	if stats[0].ID != certain.ID || stats[0].Matched != 10 || stats[0].Fired != 10 {
		t.Fatalf("certain rule stats = %+v, want 10 matched, 10 fired", stats[0])
	}
	// The certain rule fires first, so the low-probability rule behind it
	// is never even visited.
	if stats[1].ID != never.ID || stats[1].Matched != 0 || stats[1].Fired != 0 {
		t.Fatalf("shadowed rule stats = %+v, want 0/0", stats[1])
	}
}

func TestRuleStatsSurviveRebuildsAndResetOnReinstall(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	keep := validAbort()
	if err := m.Install(keep); err != nil {
		t.Fatal(err)
	}
	m.Decide(msg("serviceA", "serviceB", OnRequest, "test-1"))

	// Installing another rule rebuilds the snapshot; keep's tally survives.
	other := validDelay()
	if err := m.Install(other); err != nil {
		t.Fatal(err)
	}
	if s := m.RuleStats(); s[0].Matched != 1 {
		t.Fatalf("matched = %d after rebuild, want 1", s[0].Matched)
	}
	// Removing an unrelated rule also preserves it.
	m.Remove(other.ID)
	if s := m.RuleStats(); s[0].Matched != 1 {
		t.Fatalf("matched = %d after unrelated remove, want 1", s[0].Matched)
	}
	// Remove + reinstall starts over.
	m.Remove(keep.ID)
	if err := m.Install(keep); err != nil {
		t.Fatal(err)
	}
	if s := m.RuleStats(); s[0].Matched != 0 {
		t.Fatalf("matched = %d after reinstall, want 0", s[0].Matched)
	}
}

func TestRuleStatsLinearScanCountsToo(t *testing.T) {
	m := NewMatcher(rand.New(rand.NewSource(1)))
	m.UseLinearScan(true)
	if err := m.Install(validAbort()); err != nil {
		t.Fatal(err)
	}
	m.Decide(msg("serviceA", "serviceB", OnRequest, "test-1"))
	if s := m.RuleStats(); s[0].Matched != 1 || s[0].Fired != 1 {
		t.Fatalf("linear-scan stats = %+v, want 1/1", s[0])
	}
}
