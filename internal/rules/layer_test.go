package rules

import (
	"encoding/json"
	"testing"
)

// TestLayerAbsentMeansHTTP is the back-compat contract: rule JSON
// written before the L4 plane existed (no "layer" key) must parse,
// validate, match, and hash exactly as before.
func TestLayerAbsentMeansHTTP(t *testing.T) {
	raw := `{"id":"r1","src":"a","dst":"b","action":"abort","errorCode":503}`
	var r Rule
	if err := json.Unmarshal([]byte(raw), &r); err != nil {
		t.Fatal(err)
	}
	if r.Layer != "" || r.EffectiveLayer() != LayerHTTP {
		t.Fatalf("layer = %q / %q, want absent + http", r.Layer, r.EffectiveLayer())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("pre-L4 rule no longer validates: %v", err)
	}

	// Marshalling back must not introduce the new keys, so content
	// hashes of old rule sets are unchanged.
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"layer", "rateBytesPerSec", "abortAfterBytes", "severMode"} {
		var m map[string]any
		json.Unmarshal(out, &m)
		if _, ok := m[forbidden]; ok {
			t.Fatalf("marshalled pre-L4 rule grew key %q: %s", forbidden, out)
		}
	}
	explicit := r
	explicit.Layer = LayerHTTP
	if HashRules([]Rule{r}) == HashRules([]Rule{explicit}) {
		// An explicit "http" layer serializes, so the hash legitimately
		// differs; what matters is the absent form is stable with itself.
		t.Log("explicit http layer hashes like absent (also fine)")
	}
	if HashRules([]Rule{r}) != HashRules([]Rule{{ID: "r1", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 503}}) {
		t.Fatal("hash of a layer-absent rule is not stable")
	}
}

// TestLayerMatchingDisjoint asserts an HTTP message never matches an L4
// rule and vice versa, in both the indexed and linear-scan matchers.
func TestLayerMatchingDisjoint(t *testing.T) {
	for _, linear := range []bool{false, true} {
		m := NewMatcher(nil)
		m.UseLinearScan(linear)
		httpRule := Rule{ID: "h", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500}
		l4Rule := Rule{ID: "l", Src: "a", Dst: "b", Layer: LayerL4, Action: ActionSever}
		if err := m.Install(httpRule, l4Rule); err != nil {
			t.Fatal(err)
		}

		httpMsg := Message{Src: "a", Dst: "b", Type: OnRequest}
		if d := m.Decide(httpMsg); !d.Fired || d.Rule.ID != "h" {
			t.Fatalf("linear=%v: http message decision = %+v", linear, d)
		}
		l4Msg := Message{Src: "a", Dst: "b", Type: OnRequest, Layer: LayerL4}
		if d := m.Decide(l4Msg); !d.Fired || d.Rule.ID != "l" {
			t.Fatalf("linear=%v: l4 message decision = %+v", linear, d)
		}
	}
}

func TestValidateL4(t *testing.T) {
	base := Rule{ID: "r", Src: "a", Dst: "b", Layer: LayerL4}
	ok := func(mutate func(*Rule)) Rule {
		r := base
		mutate(&r)
		return r
	}
	valid := []Rule{
		ok(func(r *Rule) { r.Action = ActionAbort }),
		ok(func(r *Rule) { r.Action = ActionAbort; r.ErrorCode = AbortSeverConnection }),
		ok(func(r *Rule) { r.Action = ActionDelay; r.DelayMillis = 10 }),
		ok(func(r *Rule) { r.Action = ActionSever }),
		ok(func(r *Rule) { r.Action = ActionSever; r.SeverMode = SeverFIN; r.AbortAfterBytes = 100 }),
		ok(func(r *Rule) { r.Action = ActionHalfOpen; r.AbortAfterBytes = 5 }),
		ok(func(r *Rule) { r.Action = ActionThrottle; r.RateBytesPerSec = 1024 }),
		ok(func(r *Rule) { r.Action = ActionJitter; r.DelayMillis = 5 }),
	}
	for _, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", r, err)
		}
	}
	invalid := []Rule{
		ok(func(r *Rule) { r.Action = ActionAbort; r.ErrorCode = 503 }), // http code on refuse
		ok(func(r *Rule) { r.Action = ActionDelay }),                    // no interval
		ok(func(r *Rule) { r.Action = ActionSever; r.SeverMode = "x" }), // bad mode
		ok(func(r *Rule) { r.Action = ActionSever; r.AbortAfterBytes = -1 }),
		ok(func(r *Rule) { r.Action = ActionThrottle }),                    // no rate
		ok(func(r *Rule) { r.Action = ActionModify; r.SearchBytes = "x" }), // no modify on streams
		ok(func(r *Rule) { r.Action = ActionJitter }),                      // no interval
	}
	for _, r := range invalid {
		if err := r.Validate(); err == nil {
			t.Errorf("want validation error for %+v", r)
		}
	}
}

func TestValidateHTTPRejectsL4(t *testing.T) {
	for _, a := range []Action{ActionSever, ActionHalfOpen, ActionThrottle, ActionJitter} {
		r := Rule{ID: "r", Src: "a", Dst: "b", Action: a}
		if err := r.Validate(); err == nil {
			t.Errorf("http-layer rule with action %q must not validate", a)
		}
	}
	withRate := Rule{ID: "r", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500, RateBytesPerSec: 5}
	if err := withRate.Validate(); err == nil {
		t.Error("http rule with stream parameters must not validate")
	}
	bad := Rule{ID: "r", Src: "a", Dst: "b", Action: ActionAbort, ErrorCode: 500, Layer: "udp"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown layer must not validate")
	}
}
