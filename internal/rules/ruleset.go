package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// RuleSet is one versioned generation of an agent's complete rule state:
// the unit of the declarative control plane. Where the imperative endpoints
// mutate rules one batch at a time, a RuleSet describes the whole desired
// state; applying it is an idempotent atomic swap, so a reconciler can
// re-send it any number of times without disturbing a converged agent.
type RuleSet struct {
	// Generation orders rule sets: the control plane bumps it on every
	// desired-state change, and agents report their current generation so
	// reconcilers can detect drift without comparing rule bodies.
	Generation uint64 `json:"generation"`

	// Rules is the complete rule state. Order is irrelevant: hashing and
	// application canonicalize by rule ID.
	Rules []Rule `json:"rules"`

	// TTLMillis, when positive, is an agent-side lease: if the agent does
	// not receive another PUT of its rule set (any PUT, including a
	// verbatim no-op re-send) within the TTL, it clears all rules itself.
	// A killed control plane can then never leak faults into the fleet.
	TTLMillis int64 `json:"ttlMillis,omitempty"`
}

// TTL returns the rule set's lease duration (zero = no lease).
func (s RuleSet) TTL() time.Duration { return time.Duration(s.TTLMillis) * time.Millisecond }

// Validate checks every rule and rejects duplicate IDs and negative TTLs.
func (s RuleSet) Validate() error {
	if s.TTLMillis < 0 {
		return fmt.Errorf("rules: ruleset TTL must not be negative (got %d ms)", s.TTLMillis)
	}
	return ValidateAll(s.Rules)
}

// NormalizeRules returns a copy of rs sorted by rule ID — the canonical
// order used for hashing and deterministic serialization.
func NormalizeRules(rs []Rule) []Rule {
	out := make([]Rule, len(rs))
	copy(out, rs)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Canonical renders the rule set's content in its canonical serialization:
// the rules sorted by ID, JSON-encoded. Generation and TTL are versioning
// and lease metadata, not content, and are excluded — two rule sets with
// the same rules hash identically regardless of who shipped them when.
func (s RuleSet) Canonical() []byte {
	b, err := json.Marshal(NormalizeRules(s.Rules))
	if err != nil {
		// Rule is a plain struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("rules: canonical marshal: %v", err))
	}
	return b
}

// Hash returns the content hash of the canonical serialization, prefixed
// with the scheme so future hash migrations stay distinguishable.
func (s RuleSet) Hash() string { return HashRules(s.Rules) }

// HashRules hashes a rule slice the same way RuleSet.Hash does.
func HashRules(rs []Rule) string {
	sum := sha256.Sum256(RuleSet{Rules: rs}.Canonical())
	return "sha256:" + hex.EncodeToString(sum[:16])
}

// RuleSetStatus reports an agent's current rule-set version, as returned by
// PUT/GET /v1/ruleset and embedded in /v1/info. Reconcilers compare
// (Generation, Hash) against their desired state to detect drift.
type RuleSetStatus struct {
	// Generation is the agent's current rule-set generation.
	Generation uint64 `json:"generation"`

	// Hash is the content hash of the installed rules.
	Hash string `json:"hash"`

	// Rules is the number of installed rules.
	Rules int `json:"rules"`

	// Changed reports whether the responding operation swapped the rule
	// set (false for idempotent no-op re-applies).
	Changed bool `json:"changed,omitempty"`
}

// Versioned-apply errors. The agent's control API maps these to HTTP 409
// (conflict/stale) and 412 (failed If-Match precondition).
var (
	// ErrStaleGeneration rejects a rule set older than the agent's current
	// generation, applied without an If-Match override.
	ErrStaleGeneration = errors.New("rules: rule set generation is older than the installed one")

	// ErrGenerationConflict rejects a rule set carrying the agent's current
	// generation but different content — two writers minted the same
	// generation independently.
	ErrGenerationConflict = errors.New("rules: rule set generation matches but content differs")

	// ErrPreconditionFailed rejects an apply whose If-Match generation no
	// longer matches the agent's current generation.
	ErrPreconditionFailed = errors.New("rules: if-match generation does not match installed generation")
)

// NoMatch is the IfMatch sentinel for ApplyRuleSet meaning "no precondition".
const NoMatch = ^uint64(0)

// ApplyRuleSet atomically replaces the matcher's entire rule state with the
// given rule set (paper §4.2's rule installation, made declarative):
//
//   - With ifMatch == NoMatch: sets older than the current generation are
//     rejected with ErrStaleGeneration; a set at the current generation is
//     a no-op when its content hash matches (idempotent re-apply) and an
//     ErrGenerationConflict otherwise.
//   - With ifMatch set: the apply succeeds only while the matcher is still
//     at that exact generation (compare-and-swap; ErrPreconditionFailed
//     otherwise), and then always wins — this is how a reconciler that has
//     observed the agent's state replaces it, whatever its generation.
//
// When the incoming content hash equals the installed one, only the
// generation is adopted: the compiled rules, the (src,dst,type) index, and
// every per-rule counter are reused without a rebuild. Counters of rules
// that survive a content swap are carried over by ID, as with Install.
func (m *Matcher) ApplyRuleSet(set RuleSet, ifMatch uint64) (RuleSetStatus, error) {
	if err := set.Validate(); err != nil {
		return RuleSetStatus{}, err
	}
	compiled := make([]CompiledRule, 0, len(set.Rules))
	for _, r := range NormalizeRules(set.Rules) {
		c, err := Compile(r)
		if err != nil {
			return RuleSetStatus{}, err
		}
		compiled = append(compiled, c)
	}
	hash := set.Hash()

	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	if ifMatch != NoMatch {
		if cur.gen != ifMatch {
			return m.statusLocked(), fmt.Errorf("%w (installed %d, if-match %d)",
				ErrPreconditionFailed, cur.gen, ifMatch)
		}
	} else {
		switch {
		case set.Generation < cur.gen:
			return m.statusLocked(), fmt.Errorf("%w (installed %d, got %d)",
				ErrStaleGeneration, cur.gen, set.Generation)
		case set.Generation == cur.gen && hash != cur.hash:
			return m.statusLocked(), fmt.Errorf("%w (generation %d)",
				ErrGenerationConflict, cur.gen)
		case set.Generation == cur.gen:
			// Idempotent re-apply: same generation, same content.
			return m.statusLocked(), nil
		}
	}

	if hash == cur.hash {
		// Content is already installed: adopt the generation without
		// recompiling rules or touching counters.
		next := *cur
		next.gen = set.Generation
		m.snap.Store(&next)
		return m.statusLocked(), nil
	}
	next := newSnapshot(compiled, cur)
	next.gen = set.Generation
	next.hash = hash
	m.rebuilds.Add(1)
	m.snap.Store(next)
	st := m.statusLocked()
	st.Changed = true
	return st, nil
}

// Status reports the matcher's current rule-set version.
func (m *Matcher) Status() RuleSetStatus {
	snap := m.snap.Load()
	return RuleSetStatus{Generation: snap.gen, Hash: snap.hash, Rules: len(snap.rules)}
}

// statusLocked is Status for callers already holding m.mu.
func (m *Matcher) statusLocked() RuleSetStatus {
	snap := m.snap.Load()
	return RuleSetStatus{Generation: snap.gen, Hash: snap.hash, Rules: len(snap.rules)}
}

// Generation reports the matcher's current rule-set generation. It starts
// at zero and moves on every change: versioned applies adopt the incoming
// generation, imperative Install/Remove/Clear bump it by one.
func (m *Matcher) Generation() uint64 { return m.snap.Load().gen }

// Hash reports the content hash of the installed rules.
func (m *Matcher) Hash() string { return m.snap.Load().hash }

// Rebuilds reports how many times the matcher recompiled its rule snapshot.
// Idempotent re-applies of an identical rule set do not rebuild; the
// control plane's idempotency tests pin that with this counter.
func (m *Matcher) Rebuilds() int64 { return m.rebuilds.Load() }

// RuleSet returns the installed rules as a versioned rule set.
func (m *Matcher) RuleSet() RuleSet {
	snap := m.snap.Load()
	out := make([]Rule, len(snap.rules))
	for i, r := range snap.rules {
		out[i] = r.Rule
	}
	return RuleSet{Generation: snap.gen, Rules: out}
}
