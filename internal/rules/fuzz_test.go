package rules

import (
	"encoding/json"
	"testing"
)

// FuzzRuleJSON drives rule decoding and validation with arbitrary JSON:
// neither may panic, and any rule that validates must compile and match
// without panicking.
func FuzzRuleJSON(f *testing.F) {
	seeds := []string{
		`{"id":"r","src":"a","dst":"b","action":"abort","errorCode":503}`,
		`{"id":"r","src":"a","dst":"b","action":"delay","delayMillis":10,"pattern":"test-*"}`,
		`{"id":"r","src":"a","dst":"b","action":"modify","searchBytes":"x","replaceBytes":"y","on":"response"}`,
		`{"id":"r","src":"a","dst":"b","action":"abort","errorCode":-1,"probability":0.5}`,
		`{}`,
		`{"action":"zap"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), "test-1")
	}
	f.Fuzz(func(t *testing.T, data []byte, id string) {
		var r Rule
		if err := json.Unmarshal(data, &r); err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			return
		}
		c, err := Compile(r)
		if err != nil {
			t.Fatalf("validated rule failed to compile: %v (%+v)", err, r)
		}
		c.Matches(Message{Src: r.Src, Dst: r.Dst, Type: r.on(), RequestID: id})
	})
}
