package rules

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"gremlin/internal/pattern"
)

// Message describes one intercepted message, as seen by a Gremlin agent,
// for the purpose of rule matching.
type Message struct {
	// Src and Dst are the logical service names of the caller and callee.
	Src, Dst string
	// Type is the message direction: request or response.
	Type MessageType
	// RequestID is the flow ID propagated in the message headers. Empty
	// when the caller did not stamp one.
	RequestID string
}

// CompiledRule is a Rule with its request-ID pattern compiled for matching.
type CompiledRule struct {
	Rule

	pat    pattern.Pattern
	prefix string // literal prefix every matching ID must carry ("" = none)
}

// Compile validates the rule and compiles its pattern.
func Compile(r Rule) (CompiledRule, error) {
	if err := r.Validate(); err != nil {
		return CompiledRule{}, err
	}
	p, err := pattern.Compile(r.Pattern)
	if err != nil {
		return CompiledRule{}, err
	}
	return CompiledRule{Rule: r, pat: p, prefix: p.LiteralPrefix()}, nil
}

// Matches reports whether the message satisfies the rule's criteria
// (source, destination, direction, and request-ID pattern). It does not
// sample the probability; see Matcher.Decide.
func (c CompiledRule) Matches(m Message) bool {
	if c.Src != m.Src || c.Dst != m.Dst {
		return false
	}
	if c.on() != m.Type {
		return false
	}
	return c.pat.Match(m.RequestID)
}

// Decision is the outcome of matching a message against a rule set.
type Decision struct {
	// Rule is the matched rule whose fault fired. Zero-valued when Fired is
	// false.
	Rule CompiledRule
	// Matched reports whether any rule's criteria matched the message,
	// regardless of probability sampling.
	Matched bool
	// Fired reports whether a fault action should be applied.
	Fired bool
}

// Matcher holds an agent's installed rules and answers, per message, which
// fault (if any) to apply. The paper's Figure 8 measures this component's
// overhead: a linear scan of all installed rules per message, which we keep
// deliberately (the paper notes prefix/numeric ID indexes as possible
// optimizations and excludes them from measurement).
//
// Matcher is safe for concurrent use.
type Matcher struct {
	mu       sync.RWMutex
	rules    []CompiledRule
	fastPath bool
	rng      *rand.Rand
	rngMu    sync.Mutex
}

// NewMatcher creates an empty matcher. The rng drives probability sampling;
// pass a seeded rand.Rand for deterministic tests, or nil for a
// non-deterministic default.
func NewMatcher(rng *rand.Rand) *Matcher {
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &Matcher{rng: rng}
}

// Install adds rules to the matcher. It rejects the whole batch if any rule
// is invalid or if an ID collides with an installed rule.
func (m *Matcher) Install(rs ...Rule) error {
	compiled := make([]CompiledRule, 0, len(rs))
	batch := make(map[string]bool, len(rs))
	for _, r := range rs {
		c, err := Compile(r)
		if err != nil {
			return err
		}
		if batch[r.ID] {
			return fmt.Errorf("rules: duplicate rule ID %q in batch", r.ID)
		}
		batch[r.ID] = true
		compiled = append(compiled, c)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range compiled {
		for _, existing := range m.rules {
			if existing.ID == c.ID {
				return fmt.Errorf("rules: rule ID %q already installed", c.ID)
			}
		}
	}
	m.rules = append(m.rules, compiled...)
	return nil
}

// Remove deletes the rule with the given ID, reporting whether it existed.
func (m *Matcher) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.rules {
		if r.ID == id {
			m.rules = append(m.rules[:i], m.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Clear removes all rules and returns how many were installed.
func (m *Matcher) Clear() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.rules)
	m.rules = nil
	return n
}

// Len reports the number of installed rules.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rules)
}

// List returns a snapshot of the installed rules.
func (m *Matcher) List() []Rule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Rule, len(m.rules))
	for i, r := range m.rules {
		out[i] = r.Rule
	}
	return out
}

// UseLiteralPrefixFastPath toggles the "structured request IDs"
// optimization the paper suggests for reducing rule-matching overhead
// (§7.2): before running a rule's pattern, the matcher rejects it with a
// cheap literal-prefix comparison when the pattern demands a prefix the
// message ID does not carry. Semantics are unchanged — only non-matching
// scans get cheaper. Off by default for fidelity with the paper's
// measurements, which exclude such optimizations.
func (m *Matcher) UseLiteralPrefixFastPath(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fastPath = on
}

// Decide scans the installed rules in insertion order and returns the first
// rule whose criteria match the message and whose probability sample fires.
// If rules match but none fires, Decision.Matched is true and Fired false.
func (m *Matcher) Decide(msg Message) Decision {
	m.mu.RLock()
	defer m.mu.RUnlock()

	var d Decision
	for _, r := range m.rules {
		if m.fastPath && r.prefix != "" && !strings.HasPrefix(msg.RequestID, r.prefix) {
			continue
		}
		if !r.Matches(msg) {
			continue
		}
		d.Matched = true
		if m.sample(r.EffectiveProbability()) {
			d.Rule = r
			d.Fired = true
			return d
		}
	}
	return d
}

func (m *Matcher) sample(p float64) bool {
	if p >= 1 {
		return true
	}
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Float64() < p
}
