package rules

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"gremlin/internal/pattern"
)

// Message describes one intercepted message, as seen by a Gremlin agent,
// for the purpose of rule matching.
type Message struct {
	// Src and Dst are the logical service names of the caller and callee.
	Src, Dst string
	// Type is the message direction: request or response.
	Type MessageType
	// RequestID is the flow ID propagated in the message headers. Empty
	// when the caller did not stamp one. L4 messages carry the relay's
	// connection ID here.
	RequestID string
	// CallPath is the execution index of this hop (canonical X-Gremlin-EI
	// wire form): the causal call path from the system edge down to and
	// including this call. Empty when the data plane does not compute
	// indices (L4 connections, pre-EI agents). Rules with a CallPath
	// criterion match by exact string equality.
	CallPath string
	// Layer is the data plane the message was observed on. Empty means
	// LayerHTTP, matching pre-L4 callers.
	Layer Layer
}

// layer returns the message's layer with the empty value normalized to
// LayerHTTP.
func (m Message) layer() Layer {
	if m.Layer == "" {
		return LayerHTTP
	}
	return m.Layer
}

// CompiledRule is a Rule with its request-ID pattern compiled for matching.
type CompiledRule struct {
	Rule

	pat    pattern.Pattern
	prefix string // literal prefix every matching ID must carry ("" = none)
}

// Compile validates the rule and compiles its pattern.
func Compile(r Rule) (CompiledRule, error) {
	if err := r.Validate(); err != nil {
		return CompiledRule{}, err
	}
	p, err := pattern.Compile(r.Pattern)
	if err != nil {
		return CompiledRule{}, err
	}
	return CompiledRule{Rule: r, pat: p, prefix: p.LiteralPrefix()}, nil
}

// Matches reports whether the message satisfies the rule's criteria
// (source, destination, direction, and request-ID pattern). It does not
// sample the probability; see Matcher.Decide.
func (c CompiledRule) Matches(m Message) bool {
	if c.Src != m.Src || c.Dst != m.Dst {
		return false
	}
	if c.on() != m.Type || c.EffectiveLayer() != m.layer() {
		return false
	}
	if c.CallPath != "" && c.CallPath != m.CallPath {
		return false
	}
	return c.pat.Match(m.RequestID)
}

// Decision is the outcome of matching a message against a rule set.
type Decision struct {
	// Rule is the matched rule whose fault fired. Zero-valued when Fired is
	// false.
	Rule CompiledRule
	// Matched reports whether any rule's criteria matched the message,
	// regardless of probability sampling.
	Matched bool
	// Fired reports whether a fault action should be applied.
	Fired bool
}

// routeKey identifies the (src, dst, direction, layer) bucket a rule can
// match. Every message has exactly one routeKey, so rules installed for
// other routes, the other direction, or the other data plane are never
// visited by an indexed Decide.
type routeKey struct {
	src, dst string
	on       MessageType
	layer    Layer
}

// ruleCounters is one rule's lifetime match/fire tally. Counters live
// outside the immutable snapshot (behind pointers) so Decide can bump them
// without copying or locking, and snapshot rebuilds carry them across by
// rule ID.
type ruleCounters struct {
	matched atomic.Int64
	fired   atomic.Int64
}

// RuleStat reports one installed rule's lifetime counters: how many
// messages matched its criteria and how many times its fault actually
// fired after probability sampling. Counters reset when the rule is
// removed and reinstalled.
type RuleStat struct {
	ID      string `json:"id"`
	Matched int64  `json:"matched"`
	Fired   int64  `json:"fired"`
}

// snapshot is one immutable generation of the installed rule set. Writers
// build a fresh snapshot and publish it atomically (RCU); readers load the
// pointer and never synchronize with writers.
type snapshot struct {
	// gen is the rule-set generation this snapshot carries and hash the
	// content hash of its rules — the version the agent reports to the
	// control plane for drift detection. Versioned applies adopt the
	// incoming generation; imperative writers bump it by one.
	gen  uint64
	hash string
	// rules holds every installed rule in insertion order.
	rules []CompiledRule
	// stats holds each rule's counters, parallel to rules. The pointers are
	// shared with prior snapshots for rules that survived the rebuild.
	stats []*ruleCounters
	// ids is the set of installed rule IDs, for O(1) duplicate checks.
	ids map[string]struct{}
	// index maps each (src, dst, on) bucket to the positions (into rules,
	// in insertion order) of the rules that can match messages in it.
	index map[routeKey][]int
}

// newSnapshot builds a snapshot for rules, carrying counters over from
// prev (nil for a fresh matcher) for rules whose ID survives.
func newSnapshot(rules []CompiledRule, prev *snapshot) *snapshot {
	var carried map[string]*ruleCounters
	if prev != nil {
		carried = make(map[string]*ruleCounters, len(prev.rules))
		for i, r := range prev.rules {
			carried[r.ID] = prev.stats[i]
		}
	}
	s := &snapshot{
		rules: rules,
		stats: make([]*ruleCounters, len(rules)),
		ids:   make(map[string]struct{}, len(rules)),
		index: make(map[routeKey][]int, len(rules)),
	}
	for i, r := range rules {
		if c := carried[r.ID]; c != nil {
			s.stats[i] = c
		} else {
			s.stats[i] = &ruleCounters{}
		}
		s.ids[r.ID] = struct{}{}
		k := routeKey{src: r.Src, dst: r.Dst, on: r.on(), layer: r.EffectiveLayer()}
		s.index[k] = append(s.index[k], i)
	}
	return s
}

// Matcher holds an agent's installed rules and answers, per message, which
// fault (if any) to apply.
//
// The data path (Decide) is lock-free: the rule set lives in an immutable
// snapshot behind an atomic pointer, rules are indexed by (src, dst,
// message type) so rules for other routes are never visited, and
// probability sampling draws from per-goroutine RNG state, so concurrent
// routes never serialize on a shared lock. Install/Remove/Clear are the
// (mutex-serialized) writers: each builds and atomically publishes a new
// snapshot.
//
// The paper's Figure 8 measures a deliberately linear scan of all
// installed rules per message; UseLinearScan restores that behaviour as an
// ablation so the paper-fidelity measurement is preserved.
//
// Matcher is safe for concurrent use.
type Matcher struct {
	snap atomic.Pointer[snapshot]
	mu   sync.Mutex // serializes snapshot writers

	// rebuilds counts snapshot recompilations; idempotent re-applies of an
	// unchanged rule set leave it untouched (see ApplyRuleSet).
	rebuilds atomic.Int64

	fastPath   atomic.Bool
	linearScan atomic.Bool

	// seedRNG seeds the per-goroutine sampling RNGs in rngs; it is only
	// touched on pool misses, never per message.
	seedMu  sync.Mutex
	seedRNG *rand.Rand
	rngs    sync.Pool
}

// NewMatcher creates an empty matcher. The rng seeds probability sampling;
// pass a seeded rand.Rand for deterministic tests, or nil for a
// non-deterministic default.
func NewMatcher(rng *rand.Rand) *Matcher {
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	m := &Matcher{seedRNG: rng}
	m.rngs.New = func() any {
		m.seedMu.Lock()
		seed := m.seedRNG.Int63()
		m.seedMu.Unlock()
		return rand.New(rand.NewSource(seed))
	}
	empty := newSnapshot(nil, nil)
	empty.hash = HashRules(nil)
	m.snap.Store(empty)
	return m
}

// publishLocked is the single imperative write path: it compiles the next
// rule list into a snapshot at the successor generation and publishes it.
// Install, Remove, and Clear all funnel through here, which is what makes
// them shims over the versioned rule-set state — every imperative mutation
// is just the next generation of the whole set. Callers hold m.mu.
func (m *Matcher) publishLocked(next []CompiledRule, prev *snapshot) {
	s := newSnapshot(next, prev)
	s.gen = prev.gen + 1
	list := make([]Rule, len(next))
	for i, r := range next {
		list[i] = r.Rule
	}
	s.hash = HashRules(list)
	m.rebuilds.Add(1)
	m.snap.Store(s)
}

// Install adds rules to the matcher. It rejects the whole batch if any rule
// is invalid or if an ID collides with an installed rule.
func (m *Matcher) Install(rs ...Rule) error {
	compiled := make([]CompiledRule, 0, len(rs))
	batch := make(map[string]bool, len(rs))
	for _, r := range rs {
		c, err := Compile(r)
		if err != nil {
			return err
		}
		if batch[r.ID] {
			return fmt.Errorf("rules: duplicate rule ID %q in batch", r.ID)
		}
		batch[r.ID] = true
		compiled = append(compiled, c)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	for _, c := range compiled {
		if _, dup := cur.ids[c.ID]; dup {
			return fmt.Errorf("rules: rule ID %q already installed", c.ID)
		}
	}
	next := make([]CompiledRule, 0, len(cur.rules)+len(compiled))
	next = append(next, cur.rules...)
	next = append(next, compiled...)
	m.publishLocked(next, cur)
	return nil
}

// Remove deletes the rule with the given ID, reporting whether it existed.
func (m *Matcher) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	if _, ok := cur.ids[id]; !ok {
		return false
	}
	next := make([]CompiledRule, 0, len(cur.rules)-1)
	for _, r := range cur.rules {
		if r.ID != id {
			next = append(next, r)
		}
	}
	m.publishLocked(next, cur)
	return true
}

// Clear removes all rules and returns how many were installed.
func (m *Matcher) Clear() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	n := len(cur.rules)
	m.publishLocked(nil, cur)
	return n
}

// Len reports the number of installed rules.
func (m *Matcher) Len() int { return len(m.snap.Load().rules) }

// List returns a snapshot of the installed rules.
func (m *Matcher) List() []Rule {
	cur := m.snap.Load()
	out := make([]Rule, len(cur.rules))
	for i, r := range cur.rules {
		out[i] = r.Rule
	}
	return out
}

// RuleStats returns each installed rule's lifetime counters in insertion
// order. Counters survive snapshot rebuilds (further installs or removals
// of other rules) but are lost with the rule itself: Remove or Clear
// followed by a reinstall starts that rule's tally from zero.
func (m *Matcher) RuleStats() []RuleStat {
	cur := m.snap.Load()
	out := make([]RuleStat, len(cur.rules))
	for i, r := range cur.rules {
		out[i] = RuleStat{
			ID:      r.ID,
			Matched: cur.stats[i].matched.Load(),
			Fired:   cur.stats[i].fired.Load(),
		}
	}
	return out
}

// UseLiteralPrefixFastPath toggles the "structured request IDs"
// optimization the paper suggests for reducing rule-matching overhead
// (§7.2): before running a rule's pattern, the matcher rejects it with a
// cheap literal-prefix comparison when the pattern demands a prefix the
// message ID does not carry. Semantics are unchanged — only non-matching
// scans get cheaper. Off by default for fidelity with the paper's
// measurements, which exclude such optimizations.
func (m *Matcher) UseLiteralPrefixFastPath(on bool) { m.fastPath.Store(on) }

// UseLinearScan toggles the paper-fidelity ablation: Decide scans every
// installed rule in insertion order instead of consulting the (src, dst,
// type) index, reproducing the linear-scan behaviour Figure 8 measures
// (the paper notes prefix/numeric ID indexes as possible optimizations and
// excludes them from measurement). Off by default; decisions are identical
// either way, only the visit order of non-matching rules differs.
func (m *Matcher) UseLinearScan(on bool) { m.linearScan.Store(on) }

// Decide returns the first rule, in insertion order, whose criteria match
// the message and whose probability sample fires. If rules match but none
// fires, Decision.Matched is true and Fired false. Decide takes no locks.
func (m *Matcher) Decide(msg Message) Decision {
	snap := m.snap.Load()
	if m.linearScan.Load() {
		return m.decideScan(snap, msg)
	}

	var d Decision
	fast := m.fastPath.Load()
	for _, i := range snap.index[routeKey{src: msg.Src, dst: msg.Dst, on: msg.Type, layer: msg.layer()}] {
		r := &snap.rules[i]
		if fast && r.prefix != "" && !strings.HasPrefix(msg.RequestID, r.prefix) {
			continue
		}
		if r.CallPath != "" && r.CallPath != msg.CallPath {
			continue
		}
		if !r.pat.Match(msg.RequestID) {
			continue
		}
		d.Matched = true
		snap.stats[i].matched.Add(1)
		if m.sample(r.EffectiveProbability()) {
			snap.stats[i].fired.Add(1)
			d.Rule = *r
			d.Fired = true
			return d
		}
	}
	return d
}

// decideScan is the linear-scan ablation: every installed rule is visited
// in insertion order, as the paper's Figure 8 measures.
func (m *Matcher) decideScan(snap *snapshot, msg Message) Decision {
	var d Decision
	fast := m.fastPath.Load()
	for i := range snap.rules {
		r := &snap.rules[i]
		if fast && r.prefix != "" && !strings.HasPrefix(msg.RequestID, r.prefix) {
			continue
		}
		if !r.Matches(msg) {
			continue
		}
		d.Matched = true
		snap.stats[i].matched.Add(1)
		if m.sample(r.EffectiveProbability()) {
			snap.stats[i].fired.Add(1)
			d.Rule = *r
			d.Fired = true
			return d
		}
	}
	return d
}

// sample draws from per-goroutine RNG state (a sync.Pool keeps one
// rand.Rand per P in steady state), so concurrent Decide calls do not
// serialize on a shared RNG mutex.
func (m *Matcher) sample(p float64) bool {
	if p >= 1 {
		return true
	}
	rng := m.rngs.Get().(*rand.Rand)
	ok := rng.Float64() < p
	m.rngs.Put(rng)
	return ok
}
