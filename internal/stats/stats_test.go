package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFAtEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(5); got != 0 {
		t.Fatalf("empty CDF At = %v, want 0", got)
	}
	if c.Len() != 0 {
		t.Fatalf("empty CDF Len = %d", c.Len())
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.1, 10},
		{0.5, 50},
		{0.9, 90},
		{1, 100},
	}
	for _, tt := range tests {
		got, err := c.Quantile(tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	c := NewCDF(nil)
	if _, err := c.Quantile(0.5); err == nil {
		t.Fatal("Quantile on empty CDF: want error")
	}
	c = NewCDF([]float64{1})
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := c.Quantile(q); err == nil {
			t.Errorf("Quantile(%v): want error", q)
		}
	}
}

func TestMinMax(t *testing.T) {
	c := NewCDF([]float64{5, 1, 9})
	min, err := c.Min()
	if err != nil || min != 1 {
		t.Fatalf("Min = %v, %v; want 1, nil", min, err)
	}
	max, err := c.Max()
	if err != nil || max != 9 {
		t.Fatalf("Max = %v, %v; want 9, nil", max, err)
	}
	empty := NewCDF(nil)
	if _, err := empty.Min(); err == nil {
		t.Fatal("Min on empty: want error")
	}
	if _, err := empty.Max(); err == nil {
		t.Fatal("Max on empty: want error")
	}
}

func TestNewCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 99
	if got, _ := c.Max(); got != 3 {
		t.Fatalf("CDF aliased caller slice: Max = %v, want 3", got)
	}
}

func TestDurationCDF(t *testing.T) {
	c := NewDurationCDF([]time.Duration{time.Second, 2 * time.Second})
	if got := c.At(1.0); got != 0.5 {
		t.Fatalf("At(1s) = %v, want 0.5", got)
	}
}

func TestPoints(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	last := pts[len(pts)-1]
	if last.P != 1 {
		t.Fatalf("last point P = %v, want 1", last.P)
	}
	if last.Value != 99 {
		t.Fatalf("last point Value = %v, want 99", last.Value)
	}
	// Requesting more points than samples clamps.
	if got := len(NewCDF([]float64{1, 2}).Points(10)); got != 2 {
		t.Fatalf("clamped points = %d, want 2", got)
	}
	if NewCDF(nil).Points(5) != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestPointsMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		pts := NewCDF(samples).Points(len(samples))
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].P < pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		if n == 0 {
			return true
		}
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()
		}
		c := NewCDF(samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			v, err := c.Quantile(q)
			if err != nil {
				return false
			}
			if v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	if s.Stddev != 2 {
		t.Fatalf("Stddev = %v, want 2", s.Stddev)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("Summarize(nil): want error")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s, err := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 2 {
		t.Fatalf("Mean = %v, want 2", s.Mean)
	}
	if _, err := SummarizeDurations(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Observe(v)
	}
	want := []int{3, 1, 0, 0, 3}
	for i, n := range want {
		if h.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, h.Buckets[i], n, h.Buckets)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if h.String() == "" {
		t.Fatal("String should render")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want error for empty range")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Fatal("want error for inverted range")
	}
}

func TestHistogramTotalMatchesObservations(t *testing.T) {
	f := func(vals []float64) bool {
		h, err := NewHistogram(-100, 100, 10)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
			n++
		}
		return h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
