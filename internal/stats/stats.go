// Package stats provides the small statistical toolkit used by the
// benchmark harness: empirical CDFs, percentiles, histograms, and summary
// statistics over latency samples. The paper's evaluation reports response
// time CDFs (Figures 5, 6, 8) and timing breakdowns (Figure 7); this package
// computes those series.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ErrNoSamples is returned by computations that require at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is an empty CDF; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input slice is copied and
// may be reused by the caller.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewDurationCDF builds a CDF over durations, in seconds.
func NewDurationCDF(samples []time.Duration) *CDF {
	s := make([]float64, len(samples))
	for i, d := range samples {
		s[i] = d.Seconds()
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the empirical probability P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of the first sample strictly greater than x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. It returns an error for an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	if q == 0 {
		return c.sorted[0], nil
	}
	rank := int(math.Ceil(q * float64(len(c.sorted))))
	return c.sorted[rank-1], nil
}

// Min returns the smallest sample.
func (c *CDF) Min() (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrNoSamples
	}
	return c.sorted[0], nil
}

// Max returns the largest sample.
func (c *CDF) Max() (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrNoSamples
	}
	return c.sorted[len(c.sorted)-1], nil
}

// Points returns up to n evenly spaced (value, cumulative probability)
// points suitable for plotting the CDF as the paper's figures do. The last
// point is always (max, 1).
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		idx := i*len(c.sorted)/n - 1
		pts = append(pts, Point{
			Value: c.sorted[idx],
			P:     float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is one (value, cumulative probability) pair of a CDF curve.
type Point struct {
	Value float64 `json:"value"`
	P     float64 `json:"p"`
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Count  int     `json:"count"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Summarize computes summary statistics over samples.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, ErrNoSamples
	}
	c := NewCDF(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		d := v - mean
		sq += d * d
	}
	stddev := math.Sqrt(sq / float64(len(samples)))
	p50, _ := c.Quantile(0.5)
	p90, _ := c.Quantile(0.9)
	p99, _ := c.Quantile(0.99)
	return Summary{
		Count:  len(samples),
		Min:    c.sorted[0],
		Max:    c.sorted[len(c.sorted)-1],
		Mean:   mean,
		Stddev: stddev,
		P50:    p50,
		P90:    p90,
		P99:    p99,
	}, nil
}

// SummarizeDurations computes summary statistics, in seconds, over durations.
func SummarizeDurations(samples []time.Duration) (Summary, error) {
	s := make([]float64, len(samples))
	for i, d := range samples {
		s[i] = d.Seconds()
	}
	return Summarize(s)
}

// Histogram counts samples into fixed-width buckets over [lo, hi). Samples
// below lo land in the first bucket; samples at or above hi land in the last.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	width   float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: bucket count %d must be positive", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := int((v - h.Lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total reports the number of observed samples.
func (h *Histogram) Total() int {
	var t int
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// String renders a compact ASCII view of the histogram, one bucket per line.
func (h *Histogram) String() string {
	var b strings.Builder
	total := h.Total()
	for i, n := range h.Buckets {
		lo := h.Lo + float64(i)*h.width
		frac := 0.0
		if total > 0 {
			frac = float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "[%8.4f, %8.4f) %6d %5.1f%% %s\n",
			lo, lo+h.width, n, 100*frac, strings.Repeat("#", int(frac*40)))
	}
	return b.String()
}
