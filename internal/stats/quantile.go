package stats

import (
	"fmt"
	"math"
)

// StreamingHistogram estimates quantiles over a stream of non-negative
// samples in constant memory, using exponentially spaced buckets: bucket i
// spans [min·growth^i, min·growth^(i+1)), so the estimate's relative error
// is bounded by the growth factor regardless of how many samples arrive.
//
// Unlike CDF (which sorts a complete sample set after the fact), a
// StreamingHistogram answers quantile queries while samples are still
// arriving — the online assertion evaluators in internal/observe query the
// running latency quantile after every record. Remove subtracts a sample
// that previously passed through Observe, which is what a sliding window
// needs to evict expired samples without rebuilding.
//
// StreamingHistogram is not safe for concurrent use.
type StreamingHistogram struct {
	min     float64 // lower bound of bucket 0
	logG    float64 // log(growth)
	growth  float64
	under   int64 // samples <= min (incl. zero and negative clamps)
	buckets []int64
	over    int64 // samples beyond the last bucket
	count   int64
	sum     float64
}

// Default shape: 1 µs resolution up to ~28 h with 10% relative error, in
// seconds. 0.1% of a 28 h span needs log(1e11)/log(1.1) ≈ 266 buckets.
const (
	defaultQuantileMin    = 1e-6
	defaultQuantileGrowth = 1.1
	defaultQuantileSpan   = 1e11
)

// NewStreamingHistogram creates a histogram with the default shape: bucket
// bounds growing by 10% from 1e-6, covering values up to 1e5 (in whatever
// unit the caller feeds it; seconds for latencies).
func NewStreamingHistogram() *StreamingHistogram {
	h, err := NewStreamingHistogramOpts(defaultQuantileMin, defaultQuantileGrowth, defaultQuantileMin*defaultQuantileSpan)
	if err != nil {
		panic(err) // constants are valid
	}
	return h
}

// NewStreamingHistogramOpts creates a histogram resolving values in
// [min, max] with per-bucket growth factor growth (> 1). Samples at or
// below min or above max still count; they clamp to the edge buckets.
func NewStreamingHistogramOpts(min, growth, max float64) (*StreamingHistogram, error) {
	if min <= 0 || growth <= 1 || max <= min {
		return nil, fmt.Errorf("stats: invalid streaming histogram shape min=%v growth=%v max=%v", min, growth, max)
	}
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &StreamingHistogram{
		min:     min,
		logG:    math.Log(growth),
		growth:  growth,
		buckets: make([]int64, n),
	}, nil
}

// bucketIndex returns which region v falls into: -1 for the underflow
// bucket, len(buckets) for overflow, otherwise the bucket index.
func (h *StreamingHistogram) bucketIndex(v float64) int {
	if v <= h.min || math.IsNaN(v) {
		return -1
	}
	i := int(math.Log(v/h.min) / h.logG)
	if i < 0 {
		return -1
	}
	if i >= len(h.buckets) {
		return len(h.buckets)
	}
	return i
}

// Observe records one sample.
func (h *StreamingHistogram) Observe(v float64) {
	switch i := h.bucketIndex(v); {
	case i < 0:
		h.under++
	case i == len(h.buckets):
		h.over++
	default:
		h.buckets[i]++
	}
	h.count++
	h.sum += v
}

// Remove subtracts a sample previously recorded with Observe. Removing a
// value that was never observed leaves some other sample's bucket short;
// counts never go negative.
func (h *StreamingHistogram) Remove(v float64) {
	if h.count == 0 {
		return
	}
	switch i := h.bucketIndex(v); {
	case i < 0:
		if h.under > 0 {
			h.under--
		}
	case i == len(h.buckets):
		if h.over > 0 {
			h.over--
		}
	default:
		if h.buckets[i] > 0 {
			h.buckets[i]--
		}
	}
	h.count--
	h.sum -= v
	if h.count == 0 {
		h.sum = 0
	}
}

// Count reports the number of live samples (observed minus removed).
func (h *StreamingHistogram) Count() int { return int(h.count) }

// Sum reports the sum of live samples.
func (h *StreamingHistogram) Sum() float64 { return h.sum }

// Mean reports the mean of live samples (0 when empty).
func (h *StreamingHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Reset drops all samples.
func (h *StreamingHistogram) Reset() {
	h.under, h.over, h.count, h.sum = 0, 0, 0, 0
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the live samples
// by nearest rank over the buckets, answering with the geometric midpoint
// of the bucket holding that rank — so the estimate is within one growth
// factor of the exact sample. It returns ErrNoSamples when empty.
func (h *StreamingHistogram) Quantile(q float64) (float64, error) {
	if h.count == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	cum := h.under
	if cum >= rank {
		return h.min, nil
	}
	lo := h.min
	for _, n := range h.buckets {
		hi := lo * h.growth
		cum += n
		if cum >= rank {
			return math.Sqrt(lo * hi), nil
		}
		lo = hi
	}
	// Rank lives in the overflow region: everything we know is "beyond the
	// last bound".
	return lo, nil
}
