package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestStreamingHistogramEmpty(t *testing.T) {
	h := NewStreamingHistogram()
	if _, err := h.Quantile(0.5); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty quantile err = %v, want ErrNoSamples", err)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram reports count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	// Removing from an empty window must not underflow.
	h.Remove(0.5)
	if h.Count() != 0 {
		t.Fatalf("count after no-op remove = %d", h.Count())
	}
}

func TestStreamingHistogramSingleSample(t *testing.T) {
	h := NewStreamingHistogram()
	h.Observe(0.25)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		if rel := math.Abs(got-0.25) / 0.25; rel > 0.1 {
			t.Errorf("Quantile(%v) = %v, want ~0.25 (rel err %.3f)", q, got, rel)
		}
	}
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
}

func TestStreamingHistogramAllEqual(t *testing.T) {
	h := NewStreamingHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(0.042)
	}
	for _, q := range []float64{0.01, 0.5, 0.999} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		if rel := math.Abs(got-0.042) / 0.042; rel > 0.1 {
			t.Errorf("Quantile(%v) = %v, want ~0.042", q, got)
		}
	}
}

func TestStreamingHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewStreamingHistogram()
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform latencies between 100 µs and 10 s.
		v := math.Exp(rng.Float64()*math.Log(1e5)) * 1e-4
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.12 {
			t.Errorf("Quantile(%v) = %v, exact %v (rel err %.3f > growth bound)", q, got, exact, rel)
		}
	}
}

func TestStreamingHistogramRemoveSlidesWindow(t *testing.T) {
	h := NewStreamingHistogram()
	// Window holds 100 slow samples, then they expire and 100 fast ones
	// replace them: the quantile must follow the live window.
	for i := 0; i < 100; i++ {
		h.Observe(2.0)
	}
	p50, _ := h.Quantile(0.5)
	if math.Abs(p50-2.0)/2.0 > 0.1 {
		t.Fatalf("p50 with slow window = %v, want ~2.0", p50)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
		h.Remove(2.0)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	p50, _ = h.Quantile(0.5)
	if math.Abs(p50-0.01)/0.01 > 0.1 {
		t.Fatalf("p50 after slide = %v, want ~0.01", p50)
	}
	if math.Abs(h.Sum()-1.0) > 1e-6 {
		t.Fatalf("sum after slide = %v, want 1.0", h.Sum())
	}
}

func TestStreamingHistogramExtremes(t *testing.T) {
	h := NewStreamingHistogram()
	h.Observe(0)    // clamps to underflow
	h.Observe(-1)   // negative clamps too
	h.Observe(1e12) // beyond the last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q, err := h.Quantile(0.01); err != nil || q <= 0 {
		t.Fatalf("low quantile = %v, %v", q, err)
	}
	q, err := h.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if q < 1e4 {
		t.Fatalf("max quantile = %v, want the top bucket bound", q)
	}
}

func TestStreamingHistogramOpts(t *testing.T) {
	if _, err := NewStreamingHistogramOpts(0, 1.1, 10); err == nil {
		t.Error("min=0 accepted")
	}
	if _, err := NewStreamingHistogramOpts(1, 1, 10); err == nil {
		t.Error("growth=1 accepted")
	}
	if _, err := NewStreamingHistogramOpts(1, 1.1, 1); err == nil {
		t.Error("max<=min accepted")
	}
}
