// Package loadgen injects synthetic test traffic into an application under
// test and records per-request latency — the role played by the Apache
// Benchmark tool in the paper's proxy benchmarks (§7.2) and by the "100
// test requests" of the orchestration benchmark (Figure 7).
//
// Each request is stamped with a fresh request ID (prefix "test-" by
// default) so Gremlin rules with Pattern "test-*" apply to the injected
// load and to nothing else.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"gremlin/internal/stats"
	"gremlin/internal/trace"
)

// Options configures a load run.
type Options struct {
	// N is the total number of requests (required).
	N int

	// Context, when non-nil, cancels the run early: no new requests are
	// issued after it is done, in-flight ones are abandoned, and Run
	// returns the partial Result alongside the context's error. Campaigns
	// use this to stop load the moment a live assertion fires.
	Context context.Context

	// Concurrency is the number of parallel workers (default 1).
	Concurrency int

	// Path is the request path, including any query string (default "/").
	Path string

	// IDPrefix prefixes generated request IDs (default trace.TestIDPrefix).
	IDPrefix string

	// Client issues the requests. Nil uses a transparent client with no
	// timeout (measurement must not mask slow responses).
	Client *http.Client

	// Interval paces each worker between requests (default 0: closed loop).
	Interval time.Duration

	// RNG seeds ID generation salt; nil is non-deterministic.
	RNG *rand.Rand
}

// Sample is the outcome of one injected request.
type Sample struct {
	// RequestID is the ID the request carried.
	RequestID string

	// Status is the HTTP status received (0 on transport error).
	Status int

	// Latency is the end-to-end response time observed by the generator.
	Latency time.Duration

	// Err is the transport error, if any.
	Err error
}

// Result aggregates a load run.
type Result struct {
	// Samples holds one entry per request, in completion order.
	Samples []Sample

	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// Run injects opts.N requests at the target base URL and blocks until all
// complete.
func Run(target string, opts Options) (*Result, error) {
	if opts.N <= 0 {
		return nil, errors.New("loadgen: N must be positive")
	}
	if target == "" {
		return nil, errors.New("loadgen: target is required")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > opts.N {
		conc = opts.N
	}
	path := opts.Path
	if path == "" {
		path = "/"
	}
	prefix := opts.IDPrefix
	if prefix == "" {
		prefix = trace.TestIDPrefix
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc * 2}}
	}
	gen := trace.NewGenerator(prefix, opts.RNG)
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		mu      sync.Mutex
		samples = make([]Sample, 0, opts.N)
		work    = make(chan struct{})
		wg      sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				s := shoot(ctx, client, target+path, gen.Next())
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
				if opts.Interval > 0 {
					select {
					case <-time.After(opts.Interval):
					case <-ctx.Done():
					}
				}
			}
		}()
	}
feed:
	for i := 0; i < opts.N; i++ {
		select {
		case work <- struct{}{}:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	return &Result{Samples: samples, Elapsed: time.Since(start)}, ctx.Err()
}

// RunSequential is Run with one worker and requests issued strictly in
// order — required when the experiment depends on request ordering, such
// as Figure 6's "100 aborted then 100 delayed" sequence.
func RunSequential(target string, n int, path string, client *http.Client) (*Result, error) {
	return Run(target, Options{N: n, Concurrency: 1, Path: path, Client: client})
}

func shoot(ctx context.Context, client *http.Client, url, id string) Sample {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Sample{RequestID: id, Err: err}
	}
	trace.SetRequestID(req, id)
	start := time.Now()
	resp, err := client.Do(req)
	latency := time.Since(start)
	if err != nil {
		return Sample{RequestID: id, Latency: latency, Err: err}
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 8<<20))
	_ = resp.Body.Close()
	return Sample{RequestID: id, Status: resp.StatusCode, Latency: latency}
}

// Latencies returns all sample latencies in completion order.
func (r *Result) Latencies() []time.Duration {
	out := make([]time.Duration, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Latency
	}
	return out
}

// CDF builds the latency CDF (in seconds) over all samples.
func (r *Result) CDF() *stats.CDF {
	return stats.NewDurationCDF(r.Latencies())
}

// StatusCounts returns the number of samples per HTTP status (status 0 =
// transport error).
func (r *Result) StatusCounts() map[int]int {
	counts := make(map[int]int)
	for _, s := range r.Samples {
		counts[s.Status]++
	}
	return counts
}

// SuccessRate returns the fraction of samples with 2xx/3xx statuses.
func (r *Result) SuccessRate() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range r.Samples {
		if s.Err == nil && s.Status >= 200 && s.Status < 400 {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Samples))
}

// Throughput returns completed requests per second over the run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Samples)) / r.Elapsed.Seconds()
}

// String renders a one-line summary.
func (r *Result) String() string {
	statuses := r.StatusCounts()
	keys := make([]int, 0, len(statuses))
	for k := range statuses {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	summary := ""
	for _, k := range keys {
		summary += fmt.Sprintf(" %d:%d", k, statuses[k])
	}
	return fmt.Sprintf("%d requests in %s (%.1f req/s, %.0f%% ok)%s",
		len(r.Samples), r.Elapsed.Round(time.Millisecond), r.Throughput(), r.SuccessRate()*100, summary)
}
