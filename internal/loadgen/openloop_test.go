package loadgen

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPoissonMeanRate draws a large seeded sample of interarrivals and
// checks the realized mean rate is within tolerance of the configured one.
func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Poisson{RatePerSec: 200}
	const n = 20000
	var total time.Duration
	for i := 0; i < n; i++ {
		total += p.Next(rng)
	}
	rate := float64(n) / total.Seconds()
	if math.Abs(rate-200)/200 > 0.05 {
		t.Fatalf("realized rate %.1f/s, want 200/s ±5%%", rate)
	}
}

// TestPoissonInterarrivalShape checks exponential shape, not just the
// mean: the coefficient of variation of exponential interarrivals is 1.
func TestPoissonInterarrivalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Poisson{RatePerSec: 100}
	const n = 20000
	xs := make([]float64, n)
	mean := 0.0
	for i := range xs {
		xs[i] = p.Next(rng).Seconds()
		mean += xs[i]
	}
	mean /= n
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= n
	cv := math.Sqrt(variance) / mean
	if math.Abs(cv-1) > 0.1 {
		t.Fatalf("coefficient of variation %.3f, want ~1 (exponential)", cv)
	}
}

func TestConstantRate(t *testing.T) {
	c := Constant{RatePerSec: 50}
	if got := c.Next(nil); got != 20*time.Millisecond {
		t.Fatalf("interarrival = %v, want 20ms", got)
	}
}

// TestBurstyModulates checks the MMPP's realized overall rate sits
// between the base and burst rates (it spends time in both states) and is
// deterministic under a fixed seed.
func TestBurstyModulates(t *testing.T) {
	draw := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		b := &Bursty{BaseRatePerSec: 50, BurstRatePerSec: 500, MeanCalm: 200 * time.Millisecond, MeanBurst: 100 * time.Millisecond}
		const n = 20000
		var total time.Duration
		for i := 0; i < n; i++ {
			total += b.Next(rng)
		}
		return float64(n) / total.Seconds()
	}
	rate := draw(3)
	if rate <= 55 || rate >= 495 {
		t.Fatalf("MMPP realized rate %.1f/s not between base 50 and burst 500", rate)
	}
	if rate != draw(3) {
		t.Fatal("seeded MMPP not deterministic")
	}
}

func TestRunOpenLoopRateAndMix(t *testing.T) {
	var mu sync.Mutex
	paths := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		paths[r.URL.Path]++
		mu.Unlock()
	}))
	defer srv.Close()

	res, err := RunOpenLoop(srv.URL, OpenLoopOptions{
		Arrival:  Poisson{RatePerSec: 400},
		Duration: 500 * time.Millisecond,
		Routes: []RouteWeight{
			{Path: "/hot", Weight: 3},
			{Path: "/cold", Weight: 1},
		},
		RNG: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 {
		t.Fatalf("fast server shed %d arrivals", res.Shed)
	}
	if len(res.Samples) != res.Arrivals {
		t.Fatalf("samples %d != arrivals %d with nothing shed", len(res.Samples), res.Arrivals)
	}
	// Offered rate within a loose tolerance (timers make it imprecise,
	// but 400/s over 500 ms should land well inside ±30%).
	if rate := res.OfferedRate(); math.Abs(rate-400)/400 > 0.3 {
		t.Fatalf("offered rate %.1f/s, want ~400/s", rate)
	}
	mu.Lock()
	hot, cold := paths["/hot"], paths["/cold"]
	mu.Unlock()
	if hot == 0 || cold == 0 {
		t.Fatalf("route mix starved a route: hot=%d cold=%d", hot, cold)
	}
	ratio := float64(hot) / float64(cold)
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("hot/cold ratio %.2f, want ~3", ratio)
	}
}

// TestRunOpenLoopShedsAtCap points a fast arrival process at a stalled
// server with a tiny in-flight cap: arrivals beyond the cap must be shed,
// and issued requests still complete.
func TestRunOpenLoopShedsAtCap(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()

	done := make(chan *OpenLoopResult, 1)
	go func() {
		res, err := RunOpenLoop(srv.URL, OpenLoopOptions{
			Arrival:     Constant{RatePerSec: 500},
			Duration:    300 * time.Millisecond,
			MaxInFlight: 4,
			RNG:         rand.New(rand.NewSource(5)),
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(400 * time.Millisecond)
	close(release)
	res := <-done
	if res == nil {
		t.Fatal("no result")
	}
	if res.Shed == 0 {
		t.Fatal("stalled server shed nothing despite MaxInFlight=4")
	}
	if res.PeakInFlight > 4 {
		t.Fatalf("peak in-flight %d exceeded cap 4", res.PeakInFlight)
	}
	if got := len(res.Samples); got > 4 {
		t.Fatalf("%d issued requests with cap 4", got)
	}
	if res.Arrivals != len(res.Samples)+res.Shed {
		t.Fatalf("arrivals %d != issued %d + shed %d", res.Arrivals, len(res.Samples), res.Shed)
	}
	if res.ShedRate() <= 0 {
		t.Fatal("ShedRate = 0")
	}
}

func TestRunOpenLoopValidation(t *testing.T) {
	if _, err := RunOpenLoop("", OpenLoopOptions{Arrival: Constant{RatePerSec: 1}, Duration: time.Millisecond}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := RunOpenLoop("http://x", OpenLoopOptions{Duration: time.Millisecond}); err == nil {
		t.Fatal("missing arrival process accepted")
	}
	if _, err := RunOpenLoop("http://x", OpenLoopOptions{Arrival: Constant{RatePerSec: 1}}); err == nil {
		t.Fatal("missing duration and context accepted")
	}
	if _, err := RunOpenLoop("http://x", OpenLoopOptions{
		Arrival:  Constant{RatePerSec: 1},
		Duration: time.Millisecond,
		Routes:   []RouteWeight{{Path: "", Weight: 1}},
	}); err == nil || !strings.Contains(err.Error(), "route mix") {
		t.Fatalf("bad route mix accepted: %v", err)
	}
}
