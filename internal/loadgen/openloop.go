package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gremlin/internal/trace"
)

// Arrival is an arrival process: it yields the interval until the next
// request arrival. Implementations draw from the provided RNG only, so a
// seeded run is deterministic.
type Arrival interface {
	// Next returns the time until the next arrival.
	Next(rng *rand.Rand) time.Duration
}

// Poisson is an arrival process with exponentially distributed
// interarrival times — the memoryless arrivals of open-system queueing
// models — at RatePerSec mean arrivals per second.
type Poisson struct {
	RatePerSec float64
}

// Next draws an exponential interarrival.
func (p Poisson) Next(rng *rand.Rand) time.Duration {
	if p.RatePerSec <= 0 {
		return time.Second
	}
	return time.Duration(rng.ExpFloat64() / p.RatePerSec * float64(time.Second))
}

// Constant is a fixed-rate arrival process: one arrival every
// 1/RatePerSec seconds, jitter-free.
type Constant struct {
	RatePerSec float64
}

// Next returns the fixed interarrival.
func (c Constant) Next(*rand.Rand) time.Duration {
	if c.RatePerSec <= 0 {
		return time.Second
	}
	return time.Duration(float64(time.Second) / c.RatePerSec)
}

// Bursty is a two-state Markov-modulated Poisson process (MMPP): arrivals
// are Poisson at BaseRatePerSec, except during bursts when they come at
// BurstRatePerSec. State dwell times are exponential with means
// MeanCalm and MeanBurst. It models the load spikes that push an open
// system into queueing collapse while a closed-loop generator would just
// slow down.
type Bursty struct {
	BaseRatePerSec  float64
	BurstRatePerSec float64
	MeanCalm        time.Duration // mean dwell in the calm state
	MeanBurst       time.Duration // mean dwell in the burst state

	inBurst   bool
	stateLeft time.Duration // time remaining in the current state
}

// Next draws an interarrival, advancing the modulating state as dwell
// time is consumed.
func (b *Bursty) Next(rng *rand.Rand) time.Duration {
	if b.MeanCalm <= 0 {
		b.MeanCalm = time.Second
	}
	if b.MeanBurst <= 0 {
		b.MeanBurst = b.MeanCalm / 4
	}
	if b.stateLeft <= 0 {
		mean := b.MeanCalm
		if b.inBurst {
			mean = b.MeanBurst
		}
		b.stateLeft = time.Duration(rng.ExpFloat64() * float64(mean))
	}
	rate := b.BaseRatePerSec
	if b.inBurst {
		rate = b.BurstRatePerSec
	}
	gap := Poisson{RatePerSec: rate}.Next(rng)
	b.stateLeft -= gap
	if b.stateLeft <= 0 {
		b.inBurst = !b.inBurst
	}
	return gap
}

// RouteWeight is one entry of an open-loop route mix.
type RouteWeight struct {
	// Path is the request path (including any query string).
	Path string

	// Weight is the route's relative share of arrivals (must be > 0).
	Weight float64
}

// OpenLoopOptions configures RunOpenLoop.
type OpenLoopOptions struct {
	// Arrival is the arrival process (required).
	Arrival Arrival

	// Duration bounds the run; arrivals stop when it elapses (required
	// unless Context cancels first).
	Duration time.Duration

	// Context, when non-nil, stops the run early.
	Context context.Context

	// Routes is the per-route mix; arrivals pick a route with probability
	// proportional to its weight. Empty means every arrival hits "/".
	Routes []RouteWeight

	// MaxInFlight caps concurrently outstanding requests (default 512).
	// An arrival that finds the cap exhausted is SHED — counted, not
	// queued — which is what makes overload measurable: a closed-loop
	// generator would implicitly self-throttle instead.
	MaxInFlight int

	// IDPrefix prefixes generated request IDs (default trace.TestIDPrefix).
	IDPrefix string

	// Client issues the requests. Nil uses a transparent client with no
	// timeout.
	Client *http.Client

	// RNG drives arrivals, route choice, and ID salt; nil is
	// non-deterministic.
	RNG *rand.Rand
}

// OpenLoopResult aggregates an open-loop run.
type OpenLoopResult struct {
	Result

	// Arrivals is how many arrivals the process generated (issued + shed).
	Arrivals int

	// Shed is how many arrivals found MaxInFlight outstanding requests
	// and were dropped without being issued.
	Shed int

	// PeakInFlight is the highest concurrently-outstanding count observed.
	PeakInFlight int
}

// OfferedRate returns the arrival rate the process actually generated,
// in arrivals per second (issued + shed).
func (r *OpenLoopResult) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Arrivals) / r.Elapsed.Seconds()
}

// ShedRate returns the fraction of arrivals shed at the in-flight cap.
func (r *OpenLoopResult) ShedRate() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrivals)
}

// RunOpenLoop injects open-loop load: arrivals fire on the Arrival
// process's schedule regardless of how many responses have come back, so
// a slow or faulted system accumulates in-flight requests (up to
// MaxInFlight, beyond which arrivals are shed) instead of silently
// slowing the generator down. It blocks until Duration (or Context)
// elapses and every issued request completes.
func RunOpenLoop(target string, opts OpenLoopOptions) (*OpenLoopResult, error) {
	if target == "" {
		return nil, errors.New("loadgen: target is required")
	}
	if opts.Arrival == nil {
		return nil, errors.New("loadgen: open-loop run needs an Arrival process")
	}
	if opts.Duration <= 0 && opts.Context == nil {
		return nil, errors.New("loadgen: open-loop run needs a Duration or a Context")
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 512
	}
	prefix := opts.IDPrefix
	if prefix == "" {
		prefix = trace.TestIDPrefix
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	rng := opts.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	gen := trace.NewGenerator(prefix, rng)
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	totalWeight := 0.0
	for _, rw := range opts.Routes {
		if rw.Weight <= 0 || rw.Path == "" {
			return nil, errors.New("loadgen: route mix entries need a path and positive weight")
		}
		totalWeight += rw.Weight
	}

	res := &OpenLoopResult{}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		inFlight atomic.Int64
		peak     atomic.Int64
	)
	start := time.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

	// Arrivals follow an absolute schedule: each fires at the previous
	// scheduled instant plus the drawn interarrival, not at "now" plus the
	// gap — so timer and dispatch overhead never dilutes the offered rate
	// (the defining property of an open loop).
	next := start
arrivals:
	for {
		next = next.Add(opts.Arrival.Next(rng))
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break arrivals
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break arrivals
		}
		res.Arrivals++

		// Bounded in-flight: an arrival over the cap is shed, not queued.
		n := inFlight.Add(1)
		if n > int64(maxInFlight) {
			inFlight.Add(-1)
			res.Shed++
			continue
		}
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}

		path := "/"
		if len(opts.Routes) > 0 {
			pick := rng.Float64() * totalWeight
			path = opts.Routes[len(opts.Routes)-1].Path
			for _, rw := range opts.Routes {
				if pick -= rw.Weight; pick < 0 {
					path = rw.Path
					break
				}
			}
		}
		id := gen.Next()
		wg.Add(1)
		go func(url, id string) {
			defer wg.Done()
			defer inFlight.Add(-1)
			// Issued requests run to completion even after the run window
			// closes, so the result never undercounts in-flight work.
			s := shoot(context.Background(), client, url, id)
			mu.Lock()
			res.Samples = append(res.Samples, s)
			mu.Unlock()
		}(target+path, id)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.PeakInFlight = int(peak.Load())
	return res, nil
}
