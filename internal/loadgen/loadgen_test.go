package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/trace"
)

func newCountingServer(t *testing.T, status int, delay time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	var mu sync.Mutex
	seen := make(map[string]bool)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		id := trace.FromRequest(r)
		mu.Lock()
		if seen[id] {
			t.Errorf("duplicate request id %q", id)
		}
		seen[id] = true
		mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		w.WriteHeader(status)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestRunBasic(t *testing.T) {
	srv, hits := newCountingServer(t, 200, 0)
	res, err := Run(srv.URL, Options{N: 50, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 50 {
		t.Fatalf("server saw %d requests", hits.Load())
	}
	if len(res.Samples) != 50 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.SuccessRate() != 1 {
		t.Fatalf("success rate = %v", res.SuccessRate())
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
	if got := res.StatusCounts()[200]; got != 50 {
		t.Fatalf("status counts = %v", res.StatusCounts())
	}
	if cdf := res.CDF(); cdf.Len() != 50 {
		t.Fatalf("CDF len = %d", cdf.Len())
	}
}

func TestRunRecordsLatency(t *testing.T) {
	srv, _ := newCountingServer(t, 200, 50*time.Millisecond)
	res, err := Run(srv.URL, Options{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Latency < 50*time.Millisecond {
			t.Fatalf("latency %v < injected 50ms", s.Latency)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("http://x", Options{N: 0}); err == nil {
		t.Fatal("want error for N=0")
	}
	if _, err := Run("", Options{N: 1}); err == nil {
		t.Fatal("want error for empty target")
	}
}

func TestRunTransportErrorsRecorded(t *testing.T) {
	res, err := Run("http://127.0.0.1:1", Options{N: 5, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() != 0 {
		t.Fatalf("success rate = %v", res.SuccessRate())
	}
	for _, s := range res.Samples {
		if s.Err == nil || s.Status != 0 {
			t.Fatalf("sample = %+v, want transport error", s)
		}
	}
	if got := res.StatusCounts()[0]; got != 5 {
		t.Fatalf("status counts = %v", res.StatusCounts())
	}
}

func TestRunFailureStatuses(t *testing.T) {
	srv, _ := newCountingServer(t, 503, 0)
	res, err := Run(srv.URL, Options{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() != 0 {
		t.Fatalf("success rate = %v", res.SuccessRate())
	}
}

func TestRunSequentialOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		order = append(order, trace.FromRequest(r))
		mu.Unlock()
	}))
	t.Cleanup(srv.Close)
	res, err := RunSequential(srv.URL, 10, "/seq", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// Sequential run: server-side arrival order matches sample order.
	for i, s := range res.Samples {
		if order[i] != s.RequestID {
			t.Fatalf("order[%d] = %q, sample id %q", i, order[i], s.RequestID)
		}
	}
}

func TestRunCustomPrefix(t *testing.T) {
	var id string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id = trace.FromRequest(r)
	}))
	t.Cleanup(srv.Close)
	if _, err := Run(srv.URL, Options{N: 1, IDPrefix: "fig5-"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "fig5-") {
		t.Fatalf("id = %q", id)
	}
}

func TestResultString(t *testing.T) {
	srv, _ := newCountingServer(t, 200, 0)
	res, err := Run(srv.URL, Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "2 requests") || !strings.Contains(s, "200:2") {
		t.Fatalf("String = %q", s)
	}
}

func TestConcurrencyClampedToN(t *testing.T) {
	srv, hits := newCountingServer(t, 200, 0)
	if _, err := Run(srv.URL, Options{N: 2, Concurrency: 100}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d", hits.Load())
	}
}
