package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/metrics"
)

func metricsHandler(counter *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mw := metrics.NewWriter()
		mw.Counter("gremlin_agent_proxied_total", "Proxied.", float64(counter.Load()), "service", "web")
		mw.Gauge("gremlin_agent_rules", "Rules.", 2)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		mw.WriteTo(w)
	}
}

func TestScraperAppendsSamplesWithInstanceLabel(t *testing.T) {
	var c atomic.Int64
	c.Store(5)
	srv := httptest.NewServer(metricsHandler(&c))
	defer srv.Close()

	st := NewSeriesStore(0)
	sc := NewScraper(st, []Target{
		{Name: "web", URL: srv.URL},
		{Name: "", URL: ""}, // dropped
	}, ScrapeOptions{Interval: 10 * time.Millisecond})

	sc.ScrapeOnce(context.Background())
	c.Store(9)
	sc.ScrapeOnce(context.Background())

	sd := st.Match("gremlin_agent_proxied_total", map[string]string{"service": "web"})
	if len(sd) != 1 {
		t.Fatalf("series = %+v", sd)
	}
	if sd[0].Labels["instance"] != "web" {
		t.Fatalf("instance label = %q", sd[0].Labels["instance"])
	}
	if n := len(sd[0].Points); n != 2 {
		t.Fatalf("points = %d, want 2", n)
	}
	if sd[0].Points[1].V != 9 {
		t.Fatalf("latest value = %v", sd[0].Points[1].V)
	}

	stats := sc.Stats()
	if stats.Scrapes != 2 || stats.Errors != 0 || stats.StaleTargets != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestScraperCountsErrorsAndStaleness(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	st := NewSeriesStore(0)
	sc := NewScraper(st, []Target{{Name: "bad", URL: srv.URL}},
		ScrapeOptions{Interval: 5 * time.Millisecond, StaleAfter: time.Nanosecond})
	sc.ScrapeOnce(context.Background())

	stats := sc.Stats()
	if stats.Errors != 1 {
		t.Fatalf("errors = %d", stats.Errors)
	}
	if stats.StaleTargets != 1 {
		t.Fatalf("stale = %d (no success ever, horizon passed)", stats.StaleTargets)
	}
	if stats.Targets[0].LastError == "" {
		t.Fatal("last error not recorded")
	}
	if st.SeriesCount() != 0 {
		t.Fatal("failed scrape must not append samples")
	}

	// The scraper's own exposition stays lintable and carries every
	// documented family.
	mw := metrics.NewWriter()
	sc.WriteMetrics(mw)
	text := mw.String()
	if err := metrics.Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("self metrics lint: %v", err)
	}
	for _, fam := range []string{
		"gremlin_telemetry_targets",
		"gremlin_telemetry_scrapes_total",
		"gremlin_telemetry_scrape_errors_total",
		"gremlin_telemetry_stale_targets",
		"gremlin_telemetry_series",
		"gremlin_telemetry_ring_evictions_total",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("self metrics missing %s", fam)
		}
	}
}

func TestTelemetryServerSnapshotAndStream(t *testing.T) {
	st := NewSeriesStore(0)
	now := time.Now()
	for i := 0; i < 3; i++ {
		ts := now.Add(time.Duration(i-3) * time.Second)
		m := map[string]string{"service": "web", "instance": "web"}
		st.Append(ts, familyDuration+"_count", m, float64(10*i))
		st.Append(ts, familyProxied, m, float64(10*i))
		lm := map[string]string{"service": "web", "instance": "web", "le": "+Inf"}
		st.Append(ts, familyDuration+"_bucket", lm, float64(10*i))
		fm := map[string]string{"service": "web", "instance": "web", "le": "0.01"}
		st.Append(ts, familyDuration+"_bucket", fm, float64(10*i))
	}
	rec := NewRecorder()
	snapFn := func() Snapshot { return BuildSnapshot(st, rec, nil, 10*time.Second, time.Minute) }

	srv, err := NewServer("127.0.0.1:0", snapFn, ServerOptions{Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/v1/snapshot")
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := jsonDecode(resp, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if len(snap.Services) != 1 || snap.Services[0].Service != "web" {
		t.Fatalf("snapshot services = %+v", snap.Services)
	}
	if snap.Services[0].Rate <= 0 {
		t.Fatalf("rate = %v, want positive", snap.Services[0].Rate)
	}

	// The SSE stream leads with one data frame immediately.
	sresp, err := http.Get(srv.URL() + "/v1/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	line, err := bufio.NewReader(sresp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if !strings.HasPrefix(line, "data: ") || !strings.Contains(line, `"web"`) {
		t.Fatalf("stream line = %q", line)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
