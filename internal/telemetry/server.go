package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
)

// ServiceStat is one service's live view over the snapshot window.
type ServiceStat struct {
	Service    string  `json:"service"`
	Rate       float64 `json:"rate"` // requests per second
	ErrorRatio float64 `json:"errorRatio"`
	P50Millis  float64 `json:"p50Millis,omitempty"`
	P99Millis  float64 `json:"p99Millis,omitempty"`
	HasLatency bool    `json:"hasLatency"`
}

// Snapshot is one live view of the fleet: per-service rate, error ratio,
// and latency quantiles over the trailing window, plus fault windows and
// scraper health. It is what the telemetry server serves and what
// gremlin-top renders.
type Snapshot struct {
	At           time.Time     `json:"at"`
	WindowMillis int64         `json:"windowMillis"`
	Services     []ServiceStat `json:"services"`
	Active       []Window      `json:"active,omitempty"`
	Recent       []Window      `json:"recent,omitempty"`
	Scraper      ScraperStats  `json:"scraper"`
}

// BuildSnapshot computes a live view over the trailing window from a
// scraped store. rec may be nil (no campaign attached); sc may be nil
// (caller owns scraping). recentFor bounds how long closed windows stay
// in Recent — gremlin-top's violation flashes read from there.
func BuildSnapshot(store *SeriesStore, rec *Recorder, sc *Scraper, window, recentFor time.Duration) Snapshot {
	if window <= 0 {
		window = 5 * time.Second
	}
	now := time.Now()
	from := now.Add(-window)
	snap := Snapshot{At: now, WindowMillis: window.Milliseconds()}
	for _, svc := range store.LabelValues(familyDuration+"_count", "service") {
		match := map[string]string{"service": svc}
		ss := ServiceStat{
			Service:    svc,
			Rate:       store.Rate(familyDuration+"_count", match, from, now),
			ErrorRatio: errorRatioIn(store, match, from, now),
		}
		if p, ok := store.Quantile(familyDuration, match, 0.50, from, now); ok {
			ss.P50Millis, ss.HasLatency = 1000*p, true
		}
		if p, ok := store.Quantile(familyDuration, match, 0.99, from, now); ok {
			ss.P99Millis, ss.HasLatency = 1000*p, true
		}
		snap.Services = append(snap.Services, ss)
	}
	sort.Slice(snap.Services, func(i, j int) bool { return snap.Services[i].Service < snap.Services[j].Service })
	if rec != nil {
		for _, w := range rec.Windows() {
			switch {
			case w.Active():
				snap.Active = append(snap.Active, w)
			case recentFor > 0 && now.Sub(w.End) <= recentFor:
				snap.Recent = append(snap.Recent, w)
			}
		}
	}
	if sc != nil {
		snap.Scraper = sc.Stats()
	}
	return snap
}

func errorRatioIn(store *SeriesStore, match map[string]string, from, to time.Time) float64 {
	proxied := store.Increase(familyProxied, match, from, to)
	if proxied <= 0 {
		return 0
	}
	errs := store.Increase(familyAborted, match, from, to) +
		store.Increase(familySevered, match, from, to)
	return errs / proxied
}

// ServerOptions configures the telemetry server.
type ServerOptions struct {
	// Interval paces SSE snapshot pushes (default 1s).
	Interval time.Duration

	// Metrics, when set, contributes families to GET /metrics —
	// typically the Scraper's WriteMetrics.
	Metrics func(*metrics.Writer)
}

// Server serves live telemetry: GET /v1/snapshot returns one JSON
// Snapshot, GET /v1/stream pushes them as Server-Sent Events, and GET
// /metrics exposes the plane's own health. gremlin-top attaches here.
type Server struct {
	http *httpx.Server
	snap func() Snapshot
	opts ServerOptions
}

// NewServer creates and starts a telemetry server bound to addr (use
// "127.0.0.1:0" for an ephemeral port). snap is called per request /
// push tick.
func NewServer(addr string, snap func() Snapshot, opts ServerOptions) (*Server, error) {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	s := &Server{snap: snap, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, s.snap())
}

// handleStream pushes one snapshot immediately and then one per
// interval, in the SSE wire format, until the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	push := func() bool {
		b, err := json.Marshal(s.snap())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !push() {
		return
	}
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !push() {
				return
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := metrics.NewWriter()
	if s.opts.Metrics != nil {
		s.opts.Metrics(mw)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	mw.WriteTo(w)
}
