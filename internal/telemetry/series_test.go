package telemetry

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }

func TestSeriesRingEviction(t *testing.T) {
	st := NewSeriesStore(4)
	for i := 0; i < 10; i++ {
		st.Append(at(float64(i)), "m", nil, float64(i))
	}
	if st.SeriesCount() != 1 {
		t.Fatalf("series = %d", st.SeriesCount())
	}
	if st.Evictions() != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions())
	}
	pts := st.Match("m", nil)[0].Points
	if len(pts) != 4 || pts[0].V != 6 || pts[3].V != 9 {
		t.Fatalf("ring points = %+v", pts)
	}
}

func TestIncreaseCounterReset(t *testing.T) {
	st := NewSeriesStore(0)
	// 10 → 25 → (reset) 3 → 8: increase = 15 + 3 + 5 = 23.
	for i, v := range []float64{10, 25, 3, 8} {
		st.Append(at(float64(i)), "c", map[string]string{"service": "web"}, v)
	}
	got := st.Increase("c", map[string]string{"service": "web"}, at(-1), at(10))
	if got != 23 {
		t.Fatalf("increase = %v, want 23", got)
	}
	// Anchored window (1, 3]: 25→3→8 = 3 + 5 = 8.
	got = st.Increase("c", nil, at(1), at(3))
	if got != 8 {
		t.Fatalf("anchored increase = %v, want 8", got)
	}
	// Series first seen inside the window contributes nothing at its
	// first point.
	got = st.Increase("c", nil, at(-5), at(0))
	if got != 0 {
		t.Fatalf("first-point increase = %v, want 0", got)
	}
}

func TestIncreaseSumsInstances(t *testing.T) {
	st := NewSeriesStore(0)
	for i := 0; i < 3; i++ {
		st.Append(at(float64(i)), "c", map[string]string{"service": "web", "instance": "a"}, float64(10*i))
		st.Append(at(float64(i)), "c", map[string]string{"service": "web", "instance": "b"}, float64(5*i))
	}
	got := st.Increase("c", map[string]string{"service": "web"}, at(0), at(2))
	if got != 30 {
		t.Fatalf("summed increase = %v, want 30", got)
	}
	if r := st.Rate("c", map[string]string{"service": "web"}, at(0), at(2)); r != 15 {
		t.Fatalf("rate = %v, want 15", r)
	}
}

// histAppend writes one scrape of a cumulative histogram.
func histAppend(st *SeriesStore, ts time.Time, svc string, counts map[string]float64, total float64) {
	for le, v := range counts {
		st.Append(ts, "lat_bucket", map[string]string{"service": svc, "le": le}, v)
	}
	st.Append(ts, "lat_bucket", map[string]string{"service": svc, "le": "+Inf"}, total)
	st.Append(ts, "lat_count", map[string]string{"service": svc}, total)
}

func TestQuantileOver(t *testing.T) {
	st := NewSeriesStore(0)
	histAppend(st, at(0), "web", map[string]float64{"0.01": 0, "0.1": 0, "1": 0}, 0)
	// 80 obs ≤ 10ms, 15 more ≤ 100ms, 5 more ≤ 1s.
	histAppend(st, at(1), "web", map[string]float64{"0.01": 80, "0.1": 95, "1": 100}, 100)
	match := map[string]string{"service": "web"}
	p50, ok := st.Quantile("lat", match, 0.50, at(0), at(1))
	if !ok {
		t.Fatal("p50: no data")
	}
	// rank 50 of 100 lands inside the first bucket: 0.01 * 50/80.
	if want := 0.01 * 50 / 80; math.Abs(p50-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", p50, want)
	}
	p99, ok := st.Quantile("lat", match, 0.99, at(0), at(1))
	if !ok || p99 < 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v (ok=%v), want inside (0.1, 1]", p99, ok)
	}
	// Empty window: no observations.
	if _, ok := st.Quantile("lat", match, 0.5, at(5), at(6)); ok {
		t.Fatal("empty window should report no data")
	}
}

func TestQuantileClampsToLastFiniteBound(t *testing.T) {
	st := NewSeriesStore(0)
	histAppend(st, at(0), "web", map[string]float64{"0.01": 0}, 0)
	// Everything beyond the last finite bound.
	histAppend(st, at(1), "web", map[string]float64{"0.01": 0}, 10)
	p, ok := st.Quantile("lat", map[string]string{"service": "web"}, 0.99, at(0), at(1))
	if !ok || p != 0.01 {
		t.Fatalf("p99 = %v (ok=%v), want clamp to 0.01", p, ok)
	}
}

func TestSubtractIntervals(t *testing.T) {
	base := []Interval{{From: at(0), To: at(10)}}
	out := subtract(base, Interval{From: at(3), To: at(5)})
	if len(out) != 2 || !out[0].To.Equal(at(3)) || !out[1].From.Equal(at(5)) {
		t.Fatalf("subtract = %+v", out)
	}
	out = subtract(out, Interval{From: at(-1), To: at(1)})
	if len(out) != 2 || !out[0].From.Equal(at(1)) {
		t.Fatalf("subtract head = %+v", out)
	}
	out = subtract(out, Interval{From: at(20), To: at(30)})
	if len(out) != 2 {
		t.Fatalf("disjoint subtract = %+v", out)
	}
}

func TestLabelValuesAndTimestamps(t *testing.T) {
	st := NewSeriesStore(0)
	st.Append(at(0), "m", map[string]string{"service": "b"}, 1)
	st.Append(at(1), "m", map[string]string{"service": "a"}, 1)
	if vals := st.LabelValues("m", "service"); len(vals) != 2 || vals[0] != "a" {
		t.Fatalf("label values = %v", vals)
	}
	ts := st.Timestamps("m", nil, at(-1), at(5))
	if len(ts) != 2 || !ts[0].Equal(at(0)) {
		t.Fatalf("timestamps = %v", ts)
	}
}
