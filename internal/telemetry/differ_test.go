package telemetry

import (
	"testing"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// synthesize writes a scrape-per-second history for service web: fast
// latencies before the fault window [10, 15], slow inside it, fast again
// after. Counters are cumulative across the whole run, as real scrapes
// are.
func synthesize(st *SeriesStore) {
	var total, slow, aborted float64
	for i := 0; i <= 25; i++ {
		ts := at(float64(i))
		total += 10 // 10 req/s
		inWindow := i > 10 && i <= 15
		if inWindow {
			slow += 10 // every request delayed past 100ms
			aborted += 2
		}
		match := map[string]string{"service": "web", "instance": "web"}
		st.Append(ts, familyProxied, match, total)
		st.Append(ts, familyAborted, match, aborted)
		st.Append(ts, familyDuration+"_count", match, total)
		buckets := map[string]float64{
			"0.01": total - slow, // fast requests land under 10ms
			"0.25": total,        // slow ones under 250ms
		}
		for le, v := range buckets {
			lm := map[string]string{"service": "web", "instance": "web", "le": le}
			st.Append(ts, familyDuration+"_bucket", lm, v)
		}
		lm := map[string]string{"service": "web", "instance": "web", "le": "+Inf"}
		st.Append(ts, familyDuration+"_bucket", lm, total)
	}
}

func TestDifferDelayWindow(t *testing.T) {
	st := NewSeriesStore(0)
	synthesize(st)
	w := Window{
		Unit:   "delay-web->db",
		RunID:  "r1",
		Kind:   "delay",
		Target: "web->db",
		Edges:  []graph.Edge{{Src: "web", Dst: "db"}},
		Start:  at(10),
		End:    at(15),
		Status: campaign.StatusPassed,
	}
	d := NewDiffer(st, []Window{w}, DiffOptions{})
	ut, ok := d.Diff(w)
	if !ok {
		t.Fatal("no differential computed")
	}
	if ut.Service != "web" {
		t.Fatalf("measured service = %s, want web (faulted edge Src)", ut.Service)
	}
	if ut.FaultP99Millis <= ut.BaselineP99Millis {
		t.Fatalf("fault p99 %.1fms not above baseline %.1fms", ut.FaultP99Millis, ut.BaselineP99Millis)
	}
	if ut.BaselineP99Millis <= 0 || ut.BaselineP99Millis > 10 {
		t.Fatalf("baseline p99 = %.1fms, want fast", ut.BaselineP99Millis)
	}
	if ut.FaultP99Millis < 100 {
		t.Fatalf("fault p99 = %.1fms, want >= 100 (delayed bucket)", ut.FaultP99Millis)
	}
	if ut.FaultErrorRatio <= ut.BaselineErrorRatio {
		t.Fatalf("fault error ratio %.2f not above baseline %.2f", ut.FaultErrorRatio, ut.BaselineErrorRatio)
	}
	if ut.BaselineRate < 9 || ut.BaselineRate > 11 {
		t.Fatalf("baseline rate = %.1f, want ~10", ut.BaselineRate)
	}
	if !ut.Recovered || ut.RecoveryMillis <= 0 {
		t.Fatalf("recovery = %v/%dms, want recovered with positive time", ut.Recovered, ut.RecoveryMillis)
	}
	// Post-window scrapes are fast again: recovery lands on the first
	// usable scrape after the window.
	if ut.RecoveryMillis > 3000 {
		t.Fatalf("recovery = %dms, want prompt", ut.RecoveryMillis)
	}
}

func TestDifferBaselineExcludesOtherWindows(t *testing.T) {
	st := NewSeriesStore(0)
	synthesize(st)
	// A second window covering the slow span: when diffing a later
	// window, the slow span must be carved out of its baseline.
	polluter := Window{
		Unit: "u-pollute", RunID: "r-pollute",
		Edges: []graph.Edge{{Src: "web", Dst: "db"}},
		Start: at(10), End: at(15), Status: campaign.StatusPassed,
	}
	later := Window{
		Unit: "u-later", RunID: "r-later",
		Edges: []graph.Edge{{Src: "web", Dst: "db"}},
		Start: at(20), End: at(24), Status: campaign.StatusPassed,
	}
	d := NewDiffer(st, []Window{polluter, later}, DiffOptions{})
	ut, ok := d.Diff(later)
	if !ok {
		t.Fatal("no differential for later window")
	}
	// With the polluter carved out, the later window's baseline is all
	// fast traffic.
	if ut.BaselineP99Millis > 10 {
		t.Fatalf("baseline p99 = %.1fms; polluter window leaked into baseline", ut.BaselineP99Millis)
	}
}

func TestDifferSkipsActiveAndSilentWindows(t *testing.T) {
	st := NewSeriesStore(0)
	d := NewDiffer(st, nil, DiffOptions{})
	if _, ok := d.Diff(Window{Unit: "open", Start: at(0)}); ok {
		t.Fatal("active window should not diff")
	}
	if _, ok := d.Diff(Window{Unit: "silent", Start: at(0), End: at(1), Service: "ghost"}); ok {
		t.Fatal("window with no scraped signal should not diff")
	}
}

func TestRecorderWindows(t *testing.T) {
	r := NewRecorder()
	u := campaign.Unit{Key: "k1", Kind: "delay", Service: "db", Target: "web->db"}
	rs := []rules.Rule{{ID: "rule-1", Src: "web", Dst: "db"}}
	r.RunStarted(u, "run-1", rs)
	if n := len(r.ActiveWindows()); n != 1 {
		t.Fatalf("active windows = %d", n)
	}
	time.Sleep(time.Millisecond)
	r.RunFinished(u, "run-1", campaign.Entry{Status: campaign.StatusFailed})
	ws := r.Windows()
	if len(ws) != 1 || ws[0].Active() {
		t.Fatalf("windows = %+v", ws)
	}
	w := ws[0]
	if w.Status != campaign.StatusFailed || !w.End.After(w.Start) {
		t.Fatalf("window = %+v", w)
	}
	if len(w.Edges) != 1 || w.Edges[0].Src != "web" || len(w.RuleIDs) != 1 {
		t.Fatalf("window edges/rules = %+v", w)
	}
	// Unmatched finish is ignored.
	r.RunFinished(u, "run-unknown", campaign.Entry{})
}
