package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"gremlin/internal/metrics"
)

// Target is one /metrics endpoint the Scraper polls. Name becomes the
// sample's instance label, so replicas of one service stay distinct
// series.
type Target struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ScrapeOptions configures a Scraper.
type ScrapeOptions struct {
	// Interval is the poll period (default 1s).
	Interval time.Duration

	// Concurrency bounds how many targets are scraped at once
	// (default 8).
	Concurrency int

	// Timeout bounds each target fetch (default Interval, so one slow
	// target can never skid the sweep into the next tick).
	Timeout time.Duration

	// Client issues the fetches; nil uses http.DefaultClient.
	Client *http.Client

	// StaleAfter is how long after the last successful scrape a target
	// is reported stale (default 3×Interval).
	StaleAfter time.Duration
}

// TargetStats is one target's scrape health.
type TargetStats struct {
	Name        string    `json:"name"`
	URL         string    `json:"url"`
	Scrapes     int64     `json:"scrapes"`
	Errors      int64     `json:"errors"`
	LastSuccess time.Time `json:"lastSuccess,omitempty"`
	LastError   string    `json:"lastError,omitempty"`
	Stale       bool      `json:"stale"`
}

// ScraperStats is one snapshot of the whole scraper's health.
type ScraperStats struct {
	Targets      []TargetStats `json:"targets"`
	Scrapes      int64         `json:"scrapes"`
	Errors       int64         `json:"errors"`
	StaleTargets int           `json:"staleTargets"`
}

type target struct {
	Target
	mu          sync.Mutex
	scrapes     int64
	errors      int64
	lastSuccess time.Time
	lastErr     string
}

// Scraper polls every target's /metrics endpoint on an interval with
// bounded concurrency and appends the parsed samples into a SeriesStore.
// The scrape path is fully out-of-band: it issues plain GETs against
// control endpoints and never writes event-log records.
type Scraper struct {
	store   *SeriesStore
	targets []*target
	opts    ScrapeOptions
}

// NewScraper creates a scraper over store. Targets with empty URLs are
// dropped.
func NewScraper(store *SeriesStore, targets []Target, opts ScrapeOptions) *Scraper {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.Interval
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 3 * opts.Interval
	}
	s := &Scraper{store: store, opts: opts}
	for _, t := range targets {
		if t.URL == "" {
			continue
		}
		s.targets = append(s.targets, &target{Target: t})
	}
	sort.Slice(s.targets, func(i, j int) bool { return s.targets[i].Name < s.targets[j].Name })
	return s
}

// Store returns the SeriesStore samples land in.
func (s *Scraper) Store() *SeriesStore { return s.store }

// Run polls every target each interval until ctx is done. The first
// sweep runs immediately.
func (s *Scraper) Run(ctx context.Context) {
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		s.ScrapeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// ScrapeOnce sweeps every target once with bounded concurrency and
// returns when the sweep completes — the deterministic entry point tests
// and the Differ's final flush use.
func (s *Scraper) ScrapeOnce(ctx context.Context) {
	sem := make(chan struct{}, s.opts.Concurrency)
	var wg sync.WaitGroup
	for _, t := range s.targets {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(t *target) {
			defer wg.Done()
			defer func() { <-sem }()
			s.scrapeTarget(ctx, t)
		}(t)
	}
	wg.Wait()
}

func (s *Scraper) scrapeTarget(ctx context.Context, t *target) {
	fctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	fams, err := s.fetch(fctx, t.URL)
	now := time.Now()
	t.mu.Lock()
	t.scrapes++
	if err != nil {
		t.errors++
		t.lastErr = err.Error()
		t.mu.Unlock()
		return
	}
	t.lastSuccess = now
	t.lastErr = ""
	t.mu.Unlock()
	for _, f := range fams {
		for _, sm := range f.Samples {
			labels := sm.Labels
			if _, ok := labels["instance"]; !ok {
				labels = make(map[string]string, len(sm.Labels)+1)
				for k, v := range sm.Labels {
					labels[k] = v
				}
				labels["instance"] = t.Name
			}
			s.store.Append(now, sm.Name, labels, sm.Value)
		}
	}
}

func (s *Scraper) fetch(ctx context.Context, url string) ([]metrics.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return metrics.ParseExposition(resp.Body)
}

// Stats snapshots per-target and aggregate scrape health.
func (s *Scraper) Stats() ScraperStats {
	now := time.Now()
	var st ScraperStats
	for _, t := range s.targets {
		t.mu.Lock()
		ts := TargetStats{
			Name:        t.Name,
			URL:         t.URL,
			Scrapes:     t.scrapes,
			Errors:      t.errors,
			LastSuccess: t.lastSuccess,
			LastError:   t.lastErr,
		}
		t.mu.Unlock()
		ts.Stale = ts.LastSuccess.IsZero() || now.Sub(ts.LastSuccess) > s.opts.StaleAfter
		if ts.Scrapes == 0 {
			// Never swept yet: not stale, just not started.
			ts.Stale = false
		}
		st.Targets = append(st.Targets, ts)
		st.Scrapes += ts.Scrapes
		st.Errors += ts.Errors
		if ts.Stale {
			st.StaleTargets++
		}
	}
	return st
}

// WriteMetrics emits the scraper's own health as gremlin_telemetry_*
// families — the plane measures itself with the same format it scrapes.
func (s *Scraper) WriteMetrics(mw *metrics.Writer) {
	st := s.Stats()
	mw.Gauge("gremlin_telemetry_targets", "Scrape targets configured.", float64(len(st.Targets)))
	for _, t := range st.Targets {
		mw.Counter("gremlin_telemetry_scrapes_total", "Scrape attempts per target.", float64(t.Scrapes), "target", t.Name)
	}
	for _, t := range st.Targets {
		mw.Counter("gremlin_telemetry_scrape_errors_total", "Failed scrapes per target.", float64(t.Errors), "target", t.Name)
	}
	mw.Gauge("gremlin_telemetry_stale_targets", "Targets with no successful scrape within the staleness horizon.", float64(st.StaleTargets))
	mw.Gauge("gremlin_telemetry_series", "Distinct series retained in the ring store.", float64(s.store.SeriesCount()))
	mw.Counter("gremlin_telemetry_ring_evictions_total", "Points overwritten by series-ring wraparound.", float64(s.store.Evictions()))
}
