package telemetry

import (
	"sort"
	"time"

	"gremlin/internal/campaign"
)

// Metric families the Differ reads. The latency histogram is labeled by
// the observing agent's service; a delay injected on edge src→dst
// inflates src's histogram (the delay is served at the caller's proxy),
// so differentials are measured at each faulted edge's Src.
const (
	familyDuration = "gremlin_agent_request_duration_seconds"
	familyProxied  = "gremlin_agent_proxied_total"
	familyAborted  = "gremlin_agent_aborted_total"
	familySevered  = "gremlin_agent_severed_total"

	familyLogDropped = "gremlin_agent_log_dropped"
	familySubDropped = "gremlin_store_subscriber_dropped_total"
)

// DiffOptions tunes the Differ.
type DiffOptions struct {
	// Tolerance is the relative recovery band: the service has recovered
	// once its post-cleanup p99 is within baseline×(1+Tolerance).
	// Default 0.5.
	Tolerance float64

	// Slack is absolute headroom added to the recovery band, so
	// single-digit-millisecond baselines aren't held to sub-millisecond
	// precision. Default 10ms.
	Slack time.Duration

	// BaselineLookback bounds how far before each window the baseline
	// reaches. Zero uses everything scraped before the window.
	BaselineLookback time.Duration
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.5
	}
	if o.Slack <= 0 {
		o.Slack = 10 * time.Millisecond
	}
	return o
}

// Differ computes per-unit fault-window differentials from a scraped
// SeriesStore and the Recorder's windows.
type Differ struct {
	store   *SeriesStore
	windows []Window
	opts    DiffOptions
}

// NewDiffer creates a Differ over store and windows.
func NewDiffer(store *SeriesStore, windows []Window, opts DiffOptions) *Differ {
	return &Differ{store: store, windows: windows, opts: opts.withDefaults()}
}

// DiffAll computes a differential for every closed window, in start
// order. Windows with no scraped signal are skipped.
func (d *Differ) DiffAll() []campaign.UnitTelemetry {
	var out []campaign.UnitTelemetry
	for _, w := range d.windows {
		if w.Active() {
			continue
		}
		if ut, ok := d.Diff(w); ok {
			out = append(out, ut)
		}
	}
	return out
}

// Diff computes one window's differential. ok is false when the store
// holds no request signal for any candidate service — nothing was
// scraped, or the window closed before a scrape tick landed inside it.
func (d *Differ) Diff(w Window) (campaign.UnitTelemetry, bool) {
	if w.Active() {
		return campaign.UnitTelemetry{}, false
	}
	best := campaign.UnitTelemetry{}
	bestScore := 0.0
	found := false
	for _, svc := range d.candidateServices(w) {
		ut, ok := d.diffService(w, svc)
		if !ok {
			continue
		}
		// Prefer the service where the fault shows: largest p99 delta,
		// then largest error-ratio delta.
		score := (ut.FaultP99Millis - ut.BaselineP99Millis) +
			1000*(ut.FaultErrorRatio-ut.BaselineErrorRatio)
		if !found || score > bestScore {
			best, bestScore, found = ut, score, true
		}
	}
	return best, found
}

// candidateServices are where the fault's signal can appear: the Src of
// every faulted edge (latency and errors are observed at the caller's
// agent), falling back to the unit's own service.
func (d *Differ) candidateServices(w Window) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range w.Edges {
		if e.Src != "" && !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
	}
	if len(out) == 0 && w.Service != "" {
		out = append(out, w.Service)
	}
	sort.Strings(out)
	return out
}

func (d *Differ) diffService(w Window, svc string) (campaign.UnitTelemetry, bool) {
	match := map[string]string{"service": svc}
	baseline := d.baselineIntervals(w, svc)
	fault := []Interval{{From: w.Start, To: w.End}}

	baseReqs := d.store.IncreaseOver(familyDuration+"_count", match, baseline)
	faultReqs := d.store.IncreaseOver(familyDuration+"_count", match, fault)
	if baseReqs <= 0 && faultReqs <= 0 {
		return campaign.UnitTelemetry{}, false
	}

	ut := campaign.UnitTelemetry{
		Unit:    w.Unit,
		Service: svc,
		Target:  w.Target,

		BaselineRate: d.store.RateOver(familyDuration+"_count", match, baseline),
		FaultRate:    d.store.RateOver(familyDuration+"_count", match, fault),

		BaselineErrorRatio: d.errorRatio(match, baseline),
		FaultErrorRatio:    d.errorRatio(match, fault),
	}
	if p, ok := d.store.QuantileOver(familyDuration, match, 0.50, baseline); ok {
		ut.BaselineP50Millis = 1000 * p
	}
	if p, ok := d.store.QuantileOver(familyDuration, match, 0.50, fault); ok {
		ut.FaultP50Millis = 1000 * p
	}
	basP99, basOK := d.store.QuantileOver(familyDuration, match, 0.99, baseline)
	if basOK {
		ut.BaselineP99Millis = 1000 * basP99
	}
	if p, ok := d.store.QuantileOver(familyDuration, match, 0.99, fault); ok {
		ut.FaultP99Millis = 1000 * p
	}

	// Drops are fleet-wide: the faulted edge's pressure can drop records
	// anywhere on the shipping path, including the store's fan-out.
	drops := d.store.Increase(familyLogDropped, nil, w.Start, w.End) +
		d.store.Increase(familySubDropped, nil, w.Start, w.End)
	ut.DropsDelta = int64(drops + 0.5)

	if basOK {
		ut.Recovered, ut.RecoveryMillis = d.recovery(w, match, basP99)
	}
	return ut, true
}

// baselineIntervals is everything scraped before the window, minus any
// other window that overlaps it and could plausibly pollute this
// service's baseline (parallel campaigns), bounded by BaselineLookback.
func (d *Differ) baselineIntervals(w Window, svc string) []Interval {
	first, _, ok := d.store.Bounds()
	if !ok {
		return nil
	}
	from := first.Add(-time.Millisecond)
	if d.opts.BaselineLookback > 0 {
		if lb := w.Start.Add(-d.opts.BaselineLookback); lb.After(from) {
			from = lb
		}
	}
	if !w.Start.After(from) {
		return nil
	}
	ivs := []Interval{{From: from, To: w.Start}}
	for _, other := range d.windows {
		if other.RunID == w.RunID {
			continue
		}
		end := other.End
		if other.Active() {
			end = w.Start
		}
		ivs = subtract(ivs, Interval{From: other.Start, To: end})
	}
	return ivs
}

// subtract removes cut from every interval in ivs.
func subtract(ivs []Interval, cut Interval) []Interval {
	if !cut.To.After(cut.From) {
		return ivs
	}
	var out []Interval
	for _, iv := range ivs {
		if !cut.From.Before(iv.To) || !cut.To.After(iv.From) {
			out = append(out, iv) // no overlap
			continue
		}
		if cut.From.After(iv.From) {
			out = append(out, Interval{From: iv.From, To: cut.From})
		}
		if cut.To.Before(iv.To) {
			out = append(out, Interval{From: cut.To, To: iv.To})
		}
	}
	return out
}

func (d *Differ) errorRatio(match map[string]string, ivs []Interval) float64 {
	proxied := d.store.IncreaseOver(familyProxied, match, ivs)
	if proxied <= 0 {
		return 0
	}
	errs := d.store.IncreaseOver(familyAborted, match, ivs) +
		d.store.IncreaseOver(familySevered, match, ivs)
	return errs / proxied
}

// recovery steps through the scrape instants after the window closed,
// computing the windowed p99 over (End, t] at each, and reports the first
// instant the service is back inside the tolerance band of baseline.
// Scrapes that saw no new observations are skipped — recovery needs
// traffic to witness it.
func (d *Differ) recovery(w Window, match map[string]string, basP99 float64) (bool, int64) {
	band := basP99*(1+d.opts.Tolerance) + d.opts.Slack.Seconds()
	_, last, ok := d.store.Bounds()
	if !ok {
		return false, 0
	}
	for _, t := range d.store.Timestamps(familyDuration+"_count", match, w.End, last) {
		iv := []Interval{{From: w.End, To: t}}
		if d.store.IncreaseOver(familyDuration+"_count", match, iv) <= 0 {
			continue
		}
		p, pok := d.store.QuantileOver(familyDuration, match, 0.99, iv)
		if !pok {
			continue
		}
		if p <= band {
			ms := t.Sub(w.End).Milliseconds()
			if ms <= 0 {
				ms = 1
			}
			return true, ms
		}
	}
	return false, 0
}
