package telemetry

import (
	"fmt"
	"strings"

	"gremlin/internal/registry"
)

// FleetTargets builds one scrape target per distinct agent control URL in
// the registry, named by service (replicas disambiguated by index), plus
// the event store when storeURL is non-empty. Services without agents
// (leaves, external APIs) have nothing to scrape and are skipped.
func FleetTargets(reg registry.Registry, storeURL string) ([]Target, error) {
	services, err := reg.Services()
	if err != nil {
		return nil, err
	}
	var targets []Target
	seen := make(map[string]bool)
	for _, svc := range services {
		instances, err := reg.Instances(svc)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, ins := range instances {
			if ins.AgentControlURL == "" || seen[ins.AgentControlURL] {
				continue
			}
			seen[ins.AgentControlURL] = true
			n++
			name := svc
			// Replicated services get deterministic per-replica names from
			// the registry's replica index (stable across restarts and
			// listing order); instances without one fall back to seen-order.
			switch {
			case ins.Replica > 0:
				name = fmt.Sprintf("%s-%d", svc, ins.Replica)
			case n > 1:
				name = fmt.Sprintf("%s-%d", svc, n)
			}
			targets = append(targets, Target{
				Name: name, URL: strings.TrimRight(ins.AgentControlURL, "/") + "/metrics",
			})
		}
	}
	if storeURL != "" {
		targets = append(targets, Target{
			Name: "store", URL: strings.TrimRight(storeURL, "/") + "/metrics",
		})
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("telemetry: registry has no agent control URLs to scrape")
	}
	return targets, nil
}
