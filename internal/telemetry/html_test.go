package telemetry

import (
	"strings"
	"testing"

	"gremlin/internal/campaign"
	"gremlin/internal/graph"
)

func TestHTMLReport(t *testing.T) {
	st := NewSeriesStore(0)
	synthesize(st)
	windows := []Window{{
		Unit: "delay-web->db", RunID: "r1",
		Edges: []graph.Edge{{Src: "web", Dst: "db"}},
		Start: at(10), End: at(15),
		Status: campaign.StatusFailed,
	}}
	units := []campaign.UnitTelemetry{{
		Unit: "delay-web->db", Service: "web",
		BaselineP99Millis: 5, FaultP99Millis: 150,
		Recovered: true, RecoveryMillis: 1000,
	}}
	out := HTMLReport("campaign tele <smoke>", st, windows, units)
	for _, want := range []string{
		"<svg",                        // sparkline rendered
		"polyline",                    // the p99 series line
		"class=\"window\"",            // fault-window shading
		"✕ delay-web-&gt;db",          // failed window labeled in text, not color alone
		"campaign tele &lt;smoke&gt;", // title escaped
		"prefers-color-scheme: dark",  // dark scope present
		"--series-1: #2a78d6",         // palette via custom properties
		"5.0 → 150",                   // differential row present
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "<script") {
		t.Error("report must be static markup")
	}
}
