package telemetry

import (
	"sync"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// Window is one unit's fault window: the span during which its rules were
// installed, plus everything the Differ needs to attribute the fault —
// the faulted edges (whose Src services carry the latency signal) and the
// installed rule IDs.
type Window struct {
	Unit    string       `json:"unit"`
	RunID   string       `json:"runId"`
	Kind    string       `json:"kind,omitempty"`
	Service string       `json:"service,omitempty"`
	Target  string       `json:"target,omitempty"`
	Edges   []graph.Edge `json:"edges,omitempty"`
	RuleIDs []string     `json:"ruleIds,omitempty"`

	Start time.Time `json:"start"`
	// End is zero while the window is open (rules still installed).
	End time.Time `json:"end,omitempty"`
	// Status is the unit's settled entry status; empty while open.
	Status string `json:"status,omitempty"`
}

// Active reports whether the window is still open.
func (w Window) Active() bool { return w.End.IsZero() }

// Recorder implements campaign.RunObserver: it timestamps each run's
// fault window as the campaign engine opens and closes it, annotating
// whatever a SeriesStore scraped during the span. Safe for concurrent
// use; campaigns with Parallelism > 1 overlap windows, and the Differ
// carves baselines around the overlaps.
type Recorder struct {
	mu      sync.Mutex
	windows []Window
	open    map[string]int // runID -> index into windows
}

// NewRecorder creates an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[string]int)}
}

// RunStarted opens the unit's window: its rules are translated and about
// to install.
func (r *Recorder) RunStarted(u campaign.Unit, runID string, ruleset []rules.Rule) {
	w := Window{
		Unit:    u.Key,
		RunID:   runID,
		Kind:    u.Kind,
		Service: u.Service,
		Target:  u.Target,
		Start:   time.Now(),
	}
	seen := make(map[graph.Edge]bool)
	for _, rl := range ruleset {
		w.RuleIDs = append(w.RuleIDs, rl.ID)
		e := graph.Edge{Src: rl.Src, Dst: rl.Dst}
		if (e.Src != "" || e.Dst != "") && !seen[e] {
			seen[e] = true
			w.Edges = append(w.Edges, e)
		}
	}
	r.mu.Lock()
	r.open[runID] = len(r.windows)
	r.windows = append(r.windows, w)
	r.mu.Unlock()
}

// RunFinished closes the unit's window with its settled entry.
func (r *Recorder) RunFinished(u campaign.Unit, runID string, e campaign.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.open[runID]
	if !ok {
		return
	}
	delete(r.open, runID)
	r.windows[i].End = time.Now()
	r.windows[i].Status = e.Status
}

// Windows returns a copy of every recorded window, in start order.
func (r *Recorder) Windows() []Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Window, len(r.windows))
	copy(out, r.windows)
	return out
}

// ActiveWindows returns the windows still open.
func (r *Recorder) ActiveWindows() []Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Window
	for _, w := range r.windows {
		if w.Active() {
			out = append(out, w)
		}
	}
	return out
}
