// Package telemetry is Gremlin's scrape-and-analyze plane. A Scraper
// polls agent and store /metrics endpoints, parses their expositions with
// metrics.ParseExposition, and appends every sample into an in-memory ring
// SeriesStore. Campaigns annotate the store with fault windows (Recorder,
// a campaign.RunObserver), and a Differ turns the two into per-unit
// differentials — baseline-vs-fault request rate, error ratio, latency
// quantiles, drop counters, and recovery time — that land in the campaign
// journal and scorecard. The plane is fully out-of-band: it reads HTTP
// /metrics endpoints and writes nothing to the event-log path.
package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultRetention is how many points each series ring keeps. At a one-
// second scrape interval that is over eight minutes of history per series
// — enough for any campaign window plus recovery measurement.
const DefaultRetention = 512

// Point is one scraped sample of one series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// SeriesData is a snapshot of one series: its identity and points in
// time order.
type SeriesData struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// series is one ring of points. When full, appends overwrite the oldest
// point; start marks the ring's logical head.
type series struct {
	name   string
	labels map[string]string
	points []Point
	start  int
	full   bool
}

func (s *series) append(p Point, cap int) (evicted bool) {
	if !s.full && len(s.points) < cap {
		s.points = append(s.points, p)
		if len(s.points) == cap {
			s.full = true
		}
		return false
	}
	s.points[s.start] = p
	s.start = (s.start + 1) % len(s.points)
	return true
}

// snapshot returns the ring's points oldest-first.
func (s *series) snapshot() []Point {
	if !s.full {
		out := make([]Point, len(s.points))
		copy(out, s.points)
		return out
	}
	out := make([]Point, 0, len(s.points))
	out = append(out, s.points[s.start:]...)
	out = append(out, s.points[:s.start]...)
	return out
}

// SeriesStore retains scraped samples in fixed-size rings, one per
// distinct (name, labels) series, and evaluates counter-reset-aware
// increases and histogram quantiles over time windows. Safe for
// concurrent use.
type SeriesStore struct {
	mu        sync.RWMutex
	retention int
	series    map[string]*series
	evictions int64
}

// NewSeriesStore creates a store keeping up to retention points per
// series; retention <= 0 selects DefaultRetention.
func NewSeriesStore(retention int) *SeriesStore {
	if retention <= 0 {
		retention = DefaultRetention
	}
	return &SeriesStore{retention: retention, series: make(map[string]*series)}
}

// seriesKey is name plus sorted label pairs — one ring per distinct
// labeled series.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Append records one sample. NaN values are dropped.
func (st *SeriesStore) Append(t time.Time, name string, labels map[string]string, v float64) {
	if math.IsNaN(v) {
		return
	}
	key := seriesKey(name, labels)
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.series[key]
	if s == nil {
		lcopy := make(map[string]string, len(labels))
		for k, val := range labels {
			lcopy[k] = val
		}
		s = &series{name: name, labels: lcopy}
		st.series[key] = s
	}
	if s.append(Point{T: t, V: v}, st.retention) {
		st.evictions++
	}
}

// SeriesCount reports how many distinct series the store holds.
func (st *SeriesStore) SeriesCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// Evictions reports how many points rings have overwritten.
func (st *SeriesStore) Evictions() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.evictions
}

// matches reports whether have carries every pair in want.
func matches(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// Match returns snapshots of every series named name whose labels are a
// superset of match, sorted by label key for determinism.
func (st *SeriesStore) Match(name string, match map[string]string) []SeriesData {
	st.mu.RLock()
	defer st.mu.RUnlock()
	type keyed struct {
		key string
		s   *series
	}
	var hits []keyed
	for key, s := range st.series {
		if s.name == name && matches(s.labels, match) {
			hits = append(hits, keyed{key, s})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].key < hits[j].key })
	out := make([]SeriesData, 0, len(hits))
	for _, h := range hits {
		out = append(out, SeriesData{Name: h.s.name, Labels: h.s.labels, Points: h.s.snapshot()})
	}
	return out
}

// LabelValues returns the distinct values of label across series named
// name, sorted.
func (st *SeriesStore) LabelValues(name, label string) []string {
	st.mu.RLock()
	vals := make(map[string]bool)
	for _, s := range st.series {
		if s.name != name {
			continue
		}
		if v, ok := s.labels[label]; ok {
			vals[v] = true
		}
	}
	st.mu.RUnlock()
	out := make([]string, 0, len(vals))
	for v := range vals {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Interval is one time window; used by the Differ to carve baselines
// around other units' fault windows.
type Interval struct {
	From, To time.Time
}

func (iv Interval) seconds() float64 { return iv.To.Sub(iv.From).Seconds() }

// increaseIn computes the counter-reset-aware increase of one series over
// (from, to]: the sum of positive deltas, with a reset (value dropping)
// counted as the post-reset value. The anchor is the last point at or
// before from; a series first seen inside the window anchors at its first
// in-window point, which therefore contributes nothing (its prior value
// is unknown).
func increaseIn(pts []Point, from, to time.Time) float64 {
	var (
		inc      float64
		prev     float64
		anchored bool
	)
	for _, p := range pts {
		if p.T.After(to) {
			break
		}
		if !p.T.After(from) {
			prev, anchored = p.V, true
			continue
		}
		if !anchored {
			prev, anchored = p.V, true
			continue
		}
		if p.V >= prev {
			inc += p.V - prev
		} else {
			// Counter reset: the new value is the increase since.
			inc += p.V
		}
		prev = p.V
	}
	return inc
}

// Increase sums the counter-reset-aware increase of every matching
// series over (from, to].
func (st *SeriesStore) Increase(name string, match map[string]string, from, to time.Time) float64 {
	var total float64
	for _, sd := range st.Match(name, match) {
		total += increaseIn(sd.Points, from, to)
	}
	return total
}

// IncreaseOver sums Increase over a set of disjoint intervals — the
// Differ's baseline windows, which exclude other units' fault windows.
func (st *SeriesStore) IncreaseOver(name string, match map[string]string, ivs []Interval) float64 {
	var total float64
	for _, iv := range ivs {
		total += st.Increase(name, match, iv.From, iv.To)
	}
	return total
}

// Rate is Increase divided by the window length in seconds.
func (st *SeriesStore) Rate(name string, match map[string]string, from, to time.Time) float64 {
	secs := to.Sub(from).Seconds()
	if secs <= 0 {
		return 0
	}
	return st.Increase(name, match, from, to) / secs
}

// RateOver is IncreaseOver divided by the summed interval length.
func (st *SeriesStore) RateOver(name string, match map[string]string, ivs []Interval) float64 {
	var secs float64
	for _, iv := range ivs {
		secs += iv.seconds()
	}
	if secs <= 0 {
		return 0
	}
	return st.IncreaseOver(name, match, ivs) / secs
}

// Quantile computes histogram_quantile(q) for the histogram family base
// over the window: per-le bucket increases are summed across matching
// series (all instances), then the quantile is read off the cumulative
// distribution with linear interpolation inside the bucket. The second
// return is false when the window holds no observations. Values beyond
// the last finite bound clamp to it, as Prometheus does.
func (st *SeriesStore) Quantile(base string, match map[string]string, q float64, from, to time.Time) (float64, bool) {
	return st.QuantileOver(base, match, q, []Interval{{From: from, To: to}})
}

// QuantileOver is Quantile over a set of disjoint intervals.
func (st *SeriesStore) QuantileOver(base string, match map[string]string, q float64, ivs []Interval) (float64, bool) {
	type bucket struct {
		le  float64
		inc float64
	}
	byLE := make(map[float64]*bucket)
	for _, sd := range st.Match(base+"_bucket", match) {
		leStr, ok := sd.Labels["le"]
		if !ok {
			continue
		}
		le, err := parseLE(leStr)
		if err != nil {
			continue
		}
		b := byLE[le]
		if b == nil {
			b = &bucket{le: le}
			byLE[le] = b
		}
		for _, iv := range ivs {
			b.inc += increaseIn(sd.Points, iv.From, iv.To)
		}
	}
	if len(byLE) == 0 {
		return 0, false
	}
	buckets := make([]bucket, 0, len(byLE))
	for _, b := range byLE {
		// Clamp torn negatives (buckets are cumulative counters; a torn
		// scrape can briefly read one behind its neighbor).
		if b.inc < 0 {
			b.inc = 0
		}
		buckets = append(buckets, *b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].inc
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	var (
		lower   float64
		prevCum float64
	)
	for _, b := range buckets {
		if math.IsInf(b.le, 1) {
			// Beyond the last finite bound: clamp to it.
			return lower, true
		}
		if b.inc >= rank {
			in := b.inc - prevCum
			if in <= 0 {
				return b.le, true
			}
			pos := (rank - prevCum) / in
			if pos < 0 {
				pos = 0
			}
			if pos > 1 {
				pos = 1
			}
			return lower + (b.le-lower)*pos, true
		}
		lower = b.le
		prevCum = b.inc
	}
	return lower, true
}

// Timestamps returns the sorted distinct point timestamps of matching
// series within (from, to] — the scrape instants recovery measurement
// steps through.
func (st *SeriesStore) Timestamps(name string, match map[string]string, from, to time.Time) []time.Time {
	seen := make(map[int64]time.Time)
	for _, sd := range st.Match(name, match) {
		for _, p := range sd.Points {
			if p.T.After(from) && !p.T.After(to) {
				seen[p.T.UnixNano()] = p.T
			}
		}
	}
	out := make([]time.Time, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Bounds reports the earliest and latest point timestamps across the
// whole store; ok is false when the store is empty.
func (st *SeriesStore) Bounds() (first, last time.Time, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, s := range st.series {
		for _, p := range s.snapshot() {
			if !ok || p.T.Before(first) {
				first = p.T
			}
			if !ok || p.T.After(last) {
				last = p.T
			}
			ok = true
		}
	}
	return first, last, ok
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
