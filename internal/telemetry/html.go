package telemetry

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"

	"gremlin/internal/campaign"
)

// Sparkline geometry. One series per chart (p99 over time), so no legend
// box is needed — the title names the series; fault windows are shaded
// spans labeled in text, never by color alone.
const (
	sparkW    = 640
	sparkH    = 96
	sparkPadX = 8
	sparkPadY = 14
)

// HTMLReport renders a self-contained static report: per-unit
// differential rows plus an inline SVG p99 sparkline per measured
// service, with each unit's fault window shaded on it. No external
// assets; colors are CSS custom properties with light and dark scopes.
func HTMLReport(title string, store *SeriesStore, windows []Window, units []campaign.UnitTelemetry) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(reportCSS)
	b.WriteString("</head>\n<body>\n<div class=\"viz-root\">\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	if len(units) > 0 {
		b.WriteString("<h2>Fault-window differentials</h2>\n")
		b.WriteString("<p class=\"sub\">Values are baseline → fault window.</p>\n")
		b.WriteString("<table>\n<thead><tr><th>unit</th><th>service</th><th>rate (rps)</th><th>errors</th><th>p50 (ms)</th><th>p99 (ms)</th><th>drops</th><th>recovery</th></tr></thead>\n<tbody>\n")
		for _, u := range units {
			recovery := "—"
			if u.Recovered {
				recovery = fmt.Sprintf("%dms", u.RecoveryMillis)
			} else if u.BaselineP99Millis > 0 && u.FaultP99Millis > 0 {
				recovery = "not recovered"
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%.1f → %.1f</td><td class=\"num\">%.1f%% → %.1f%%</td><td class=\"num\">%s → %s</td><td class=\"num\">%s → %s</td><td class=\"num\">%d</td><td>%s</td></tr>\n",
				html.EscapeString(u.Unit), html.EscapeString(u.Service),
				u.BaselineRate, u.FaultRate,
				100*u.BaselineErrorRatio, 100*u.FaultErrorRatio,
				htmlMillis(u.BaselineP50Millis), htmlMillis(u.FaultP50Millis),
				htmlMillis(u.BaselineP99Millis), htmlMillis(u.FaultP99Millis),
				u.DropsDelta, recovery)
		}
		b.WriteString("</tbody>\n</table>\n")
	}

	for _, svc := range sparklineServices(store, units) {
		pts := p99Series(store, svc)
		if len(pts) < 2 {
			continue
		}
		fmt.Fprintf(&b, "<h2>%s — p99 latency</h2>\n", html.EscapeString(svc))
		writeSparkline(&b, pts, serviceWindows(windows, svc))
	}

	b.WriteString("</div>\n</body>\n</html>\n")
	return b.String()
}

// sparklineServices is every service with latency series, measured units
// first.
func sparklineServices(store *SeriesStore, units []campaign.UnitTelemetry) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range units {
		if u.Service != "" && !seen[u.Service] {
			seen[u.Service] = true
			out = append(out, u.Service)
		}
	}
	rest := store.LabelValues(familyDuration+"_count", "service")
	sort.Strings(rest)
	for _, svc := range rest {
		if !seen[svc] {
			seen[svc] = true
			out = append(out, svc)
		}
	}
	return out
}

// p99Series computes the instantaneous p99 at each scrape instant: the
// quantile of the observations that landed between consecutive scrapes.
// Instants with no new observations are skipped, breaking the line.
func p99Series(store *SeriesStore, svc string) []Point {
	match := map[string]string{"service": svc}
	first, last, ok := store.Bounds()
	if !ok {
		return nil
	}
	stamps := store.Timestamps(familyDuration+"_count", match, first.Add(-time.Millisecond), last)
	var out []Point
	for i := 1; i < len(stamps); i++ {
		if p, ok := store.Quantile(familyDuration, match, 0.99, stamps[i-1], stamps[i]); ok {
			out = append(out, Point{T: stamps[i], V: 1000 * p})
		}
	}
	return out
}

// serviceWindows picks the fault windows whose faulted edges observe at
// svc (the edge Src, where the latency signal appears).
func serviceWindows(windows []Window, svc string) []Window {
	var out []Window
	for _, w := range windows {
		if w.Active() {
			continue
		}
		for _, e := range w.Edges {
			if e.Src == svc {
				out = append(out, w)
				break
			}
		}
	}
	return out
}

func writeSparkline(b *strings.Builder, pts []Point, windows []Window) {
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	span := t1.Sub(t0).Seconds()
	if span <= 0 {
		span = 1
	}
	var vmax float64
	for _, p := range pts {
		if p.V > vmax {
			vmax = p.V
		}
	}
	if vmax <= 0 {
		vmax = 1
	}
	x := func(t time.Time) float64 {
		return sparkPadX + (float64(sparkW-2*sparkPadX) * t.Sub(t0).Seconds() / span)
	}
	y := func(v float64) float64 {
		return float64(sparkH-sparkPadY) - float64(sparkH-2*sparkPadY)*v/vmax
	}

	fmt.Fprintf(b, "<svg class=\"spark\" viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		sparkW, sparkH, sparkW, sparkH)
	// Shaded fault-window spans sit under the line; the label carries
	// identity (and failure state) in text, never color alone.
	for _, w := range windows {
		x0, x1 := x(w.Start), x(w.End)
		if x1 < x0+2 {
			x1 = x0 + 2
		}
		fmt.Fprintf(b, "  <rect class=\"window\" x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\"><title>%s</title></rect>\n",
			x0, sparkPadY, x1-x0, sparkH-2*sparkPadY, html.EscapeString(w.Unit))
		label := w.Unit
		class := "winlabel"
		if w.Status == campaign.StatusFailed {
			label = "✕ " + label
			class = "winlabel failed"
		}
		fmt.Fprintf(b, "  <text class=\"%s\" x=\"%.1f\" y=\"%d\">%s</text>\n",
			class, x0, sparkPadY-4, html.EscapeString(label))
	}
	// Baseline axis.
	fmt.Fprintf(b, "  <line class=\"axis\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\"/>\n",
		sparkPadX, sparkH-sparkPadY, sparkW-sparkPadX, sparkH-sparkPadY)
	// The series itself: one thin line.
	var poly strings.Builder
	for i, p := range pts {
		if i > 0 {
			poly.WriteByte(' ')
		}
		fmt.Fprintf(&poly, "%.1f,%.1f", x(p.T), y(p.V))
	}
	fmt.Fprintf(b, "  <polyline class=\"series\" points=\"%s\"><title>p99 (ms)</title></polyline>\n", poly.String())
	// Max tick in muted ink — the single value label the scale needs.
	fmt.Fprintf(b, "  <text class=\"tick\" x=\"%d\" y=\"%d\">%.0fms</text>\n",
		sparkW-sparkPadX, sparkPadY+8, vmax)
	b.WriteString("</svg>\n")
}

func htmlMillis(v float64) string {
	if v <= 0 {
		return "—"
	}
	if v < 10 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.0f", v)
}

// reportCSS holds the palette as CSS custom properties: light values on
// the root scope, dark values under both the OS media query and an
// explicit data-theme toggle, so the dark steps are selected, not an
// automatic flip.
const reportCSS = `<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --series-1: #2a78d6;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --window-fill: #f0efec;
  --status-critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary);
  background: var(--surface-1);
  max-width: 720px;
  margin: 0 auto;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --series-1: #3987e5;
    --grid: #2c2c2a;
    --axis: #383835;
    --window-fill: #383835;
    --status-critical: #e66767;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --series-1: #3987e5;
  --grid: #2c2c2a;
  --axis: #383835;
  --window-fill: #383835;
  --status-critical: #e66767;
  --border: rgba(255,255,255,0.10);
}
body { margin: 0; background: var(--surface-1); }
h1 { font-size: 20px; }
h2 { font-size: 15px; margin-top: 28px; }
.sub { color: var(--text-secondary); font-size: 13px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-secondary); font-weight: 600; border-bottom: 1px solid var(--axis); padding: 4px 8px; }
td { border-bottom: 1px solid var(--grid); padding: 4px 8px; }
td.num { font-variant-numeric: tabular-nums; }
.spark { display: block; }
.spark .series { fill: none; stroke: var(--series-1); stroke-width: 2; stroke-linejoin: round; }
.spark .axis { stroke: var(--axis); stroke-width: 1; }
.spark .window { fill: var(--window-fill); }
.spark .winlabel { fill: var(--text-secondary); font-size: 10px; }
.spark .winlabel.failed { fill: var(--status-critical); }
.spark .tick { fill: var(--text-muted); font-size: 10px; text-anchor: end; font-variant-numeric: tabular-nums; }
</style>
`
