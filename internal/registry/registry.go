// Package registry maps logical service names to physical instances and
// their Gremlin agents. The Failure Orchestrator consults the registry to
// locate every agent that must receive a rule: "since an application might
// have multiple instances of any given service, the Failure Orchestrator
// locates and configures all physical instances of the Gremlin agents"
// (paper §4.2).
//
// Two implementations are provided: Static (fixed table, the paper's
// configuration-file model) and a dynamic HTTP registry (Server/Client)
// that services register with at startup.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownService is returned when a service has no registered instances.
var ErrUnknownService = errors.New("registry: unknown service")

// Instance is one physical instance of a logical service together with its
// co-located Gremlin agent.
type Instance struct {
	// Service is the logical service name.
	Service string `json:"service"`

	// Addr is the instance's own listen address (host:port), used when
	// wiring routes to this service.
	Addr string `json:"addr"`

	// AgentControlURL is the base URL of the sidecar agent's control API.
	// Empty for services that run without an agent (e.g. external APIs).
	AgentControlURL string `json:"agentControlUrl,omitempty"`

	// Replica is the instance's replica index within its service (0-based).
	// Single-replica services leave it zero.
	Replica int `json:"replica,omitempty"`

	// Health is the instance's last known health state as reported by its
	// registrar or a health checker ("up", "down"; empty = unknown/unchecked).
	Health string `json:"health,omitempty"`
}

// Registry resolves logical service names.
type Registry interface {
	// Instances returns the physical instances of a service, or
	// ErrUnknownService.
	Instances(service string) ([]Instance, error)

	// Services returns all known logical service names, sorted.
	Services() ([]string, error)
}

// Static is a fixed, thread-safe registry.
type Static struct {
	mu        sync.RWMutex
	instances map[string][]Instance
}

var _ Registry = (*Static)(nil)

// NewStatic builds a registry from a fixed instance list.
func NewStatic(instances ...Instance) *Static {
	s := &Static{instances: make(map[string][]Instance)}
	for _, in := range instances {
		s.Add(in)
	}
	return s
}

// Add registers an instance. Duplicate (service, addr) pairs replace the
// previous entry so re-registration after restart is idempotent.
func (s *Static) Add(in Instance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.instances == nil {
		s.instances = make(map[string][]Instance)
	}
	list := s.instances[in.Service]
	for i, existing := range list {
		if existing.Addr == in.Addr {
			list[i] = in
			return
		}
	}
	s.instances[in.Service] = append(list, in)
}

// Remove deregisters the instance with the given service and address,
// reporting whether it existed.
func (s *Static) Remove(service, addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.instances[service]
	for i, in := range list {
		if in.Addr == addr {
			s.instances[service] = append(list[:i], list[i+1:]...)
			if len(s.instances[service]) == 0 {
				delete(s.instances, service)
			}
			return true
		}
	}
	return false
}

// Instances implements Registry.
func (s *Static) Instances(service string) ([]Instance, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list, ok := s.instances[service]
	if !ok || len(list) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	out := make([]Instance, len(list))
	copy(out, list)
	return out, nil
}

// Services implements Registry.
func (s *Static) Services() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.instances))
	for n := range s.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// AgentURLs returns the distinct agent control URLs for a service's
// instances, preserving first-seen order. Instances without agents are
// skipped.
func AgentURLs(r Registry, service string) ([]string, error) {
	instances, err := r.Instances(service)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(instances))
	var urls []string
	for _, in := range instances {
		if in.AgentControlURL == "" || seen[in.AgentControlURL] {
			continue
		}
		seen[in.AgentControlURL] = true
		urls = append(urls, in.AgentControlURL)
	}
	return urls, nil
}

// AllAgentURLs returns the distinct agent control URLs across every
// registered service, sorted.
func AllAgentURLs(r Registry) ([]string, error) {
	services, err := r.Services()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, svc := range services {
		urls, err := AgentURLs(r, svc)
		if err != nil {
			return nil, err
		}
		for _, u := range urls {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}
