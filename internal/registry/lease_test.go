package registry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gremlin/internal/metrics"
)

// fakeClock is a manual clock for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestDynamicRegisterRenewExpire(t *testing.T) {
	clock := newFakeClock()
	d := NewDynamic(DynamicOptions{DefaultTTL: 10 * time.Second, Now: clock.Now})
	if err := d.Register(Instance{Service: "a", Addr: "x:1"}, 0); err != nil {
		t.Fatal(err)
	}

	clock.Advance(8 * time.Second)
	if err := d.Renew("a", "x:1", 0); err != nil {
		t.Fatal(err)
	}

	// 8s + 8s: past the original expiry, inside the renewed lease.
	clock.Advance(8 * time.Second)
	if got, err := d.Instances("a"); err != nil || len(got) != 1 {
		t.Fatalf("Instances after renew = %v, %v", got, err)
	}

	// Lapse the renewed lease.
	clock.Advance(11 * time.Second)
	if _, err := d.Instances("a"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("expired member still visible: %v", err)
	}
	if err := d.Renew("a", "x:1", 0); err == nil {
		t.Fatal("renewing an expired lease should fail")
	}
	if svcs, _ := d.Services(); len(svcs) != 0 {
		t.Fatalf("Services after expiry = %v", svcs)
	}
}

func TestDynamicReRegistrationDeduplicates(t *testing.T) {
	clock := newFakeClock()
	d := NewDynamic(DynamicOptions{Now: clock.Now})
	for i := 0; i < 5; i++ {
		if err := d.Register(Instance{Service: "a", Addr: "x:1", AgentControlURL: fmt.Sprintf("http://agent-%d", i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Instances("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AgentControlURL != "http://agent-4" {
		t.Fatalf("re-registration double-counted: %+v", got)
	}
	urls, err := AgentURLs(d, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 {
		t.Fatalf("orchestrator fan-out would hit %d agents, want 1: %v", len(urls), urls)
	}
}

func TestDynamicEvents(t *testing.T) {
	clock := newFakeClock()
	d := NewDynamic(DynamicOptions{DefaultTTL: 5 * time.Second, Now: clock.Now})
	ctx := context.Background()

	if err := d.Register(Instance{Service: "a", Addr: "x:1"}, 0); err != nil {
		t.Fatal(err)
	}
	evs, v, err := d.WaitEvents(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventJoin || evs[0].Instance.Addr != "x:1" {
		t.Fatalf("events = %+v", evs)
	}

	// Renewal: no event. Content change: update event.
	if err := d.Renew("a", "x:1", 0); err != nil {
		t.Fatal(err)
	}
	if d.Version() != v {
		t.Fatal("renewal must not bump the version")
	}
	if err := d.Register(Instance{Service: "a", Addr: "x:1", Health: "up"}, 0); err != nil {
		t.Fatal(err)
	}
	evs, v, err = d.WaitEvents(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventUpdate {
		t.Fatalf("events = %+v", evs)
	}

	// Expiry surfaces as an expire event (via Sweep).
	clock.Advance(6 * time.Second)
	if n := d.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	evs, _, err = d.WaitEvents(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventExpire {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDynamicWaitEventsBlocksUntilChange(t *testing.T) {
	d := NewDynamic(DynamicOptions{})
	since := d.Version()
	done := make(chan Event, 1)
	go func() {
		evs, _, err := d.WaitEvents(context.Background(), since)
		if err != nil || len(evs) == 0 {
			done <- Event{}
			return
		}
		done <- evs[0]
	}()
	time.Sleep(20 * time.Millisecond)
	if err := d.Register(Instance{Service: "b", Addr: "y:1"}, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-done:
		if ev.Type != EventJoin || ev.Instance.Service != "b" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never woke")
	}
}

func TestDynamicWaitEventsContextCancel(t *testing.T) {
	d := NewDynamic(DynamicOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := d.WaitEvents(ctx, d.Version()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestDynamicWatchGap(t *testing.T) {
	d := NewDynamic(DynamicOptions{MaxEvents: 4})
	for i := 0; i < 10; i++ {
		if err := d.Register(Instance{Service: "a", Addr: fmt.Sprintf("x:%d", i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := d.WaitEvents(context.Background(), 1); !errors.Is(err, ErrWatchGap) {
		t.Fatalf("err = %v, want ErrWatchGap", err)
	}
	// A cursor inside the retained window still replays.
	evs, _, err := d.WaitEvents(context.Background(), d.Version()-2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
}

// TestDynamicConcurrent exercises register/renew/expire/read races under
// -race: 8 goroutines churn leases on a fast manual clock while readers
// list and watch.
func TestDynamicConcurrent(t *testing.T) {
	d := NewDynamic(DynamicOptions{DefaultTTL: 2 * time.Millisecond})
	stopSweep := d.StartSweeper(time.Millisecond)
	defer stopSweep()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		var since uint64
		for ctx.Err() == nil {
			evs, v, err := d.WaitEvents(ctx, since)
			if errors.Is(err, ErrWatchGap) {
				since = v
				continue
			}
			if err != nil {
				return
			}
			_ = evs
			since = v
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := Instance{Service: "svc", Addr: fmt.Sprintf("h%d:1", w)}
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					_ = d.Register(in, time.Millisecond)
				case 1:
					_ = d.Renew(in.Service, in.Addr, time.Millisecond)
				case 2:
					_, _ = d.Instances("svc")
					_ = d.Members()
				case 3:
					d.Deregister(in.Service, in.Addr)
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	watcher.Wait()
}

func TestDynamicWriteMetrics(t *testing.T) {
	clock := newFakeClock()
	d := NewDynamic(DynamicOptions{DefaultTTL: time.Second, Now: clock.Now})
	if err := d.Register(Instance{Service: "a", Addr: "x:1"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Instance{Service: "a", Addr: "x:2"}, 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	d.Sweep()
	if err := d.Register(Instance{Service: "b", Addr: "y:1"}, 0); err != nil {
		t.Fatal(err)
	}

	w := metrics.NewWriter()
	d.WriteMetrics(w)
	body := w.String()
	if err := metrics.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"gremlin_registry_instances 1",
		"gremlin_registry_registrations_total 3",
		"gremlin_registry_expirations_total 2",
		`gremlin_registry_service_instances{service="b"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestDynamicServerLeaseFlow(t *testing.T) {
	d := NewDynamic(DynamicOptions{DefaultTTL: 200 * time.Millisecond})
	srv, err := NewServer("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	in := Instance{Service: "web", Addr: "10.0.0.1:80", AgentControlURL: "http://10.0.0.1:9000", Replica: 1}
	if err := c.RegisterTTL(in, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	members, err := c.Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].Instance != in || members[0].Expires.IsZero() {
		t.Fatalf("members = %+v", members)
	}

	// Keep renewing past the original TTL.
	for i := 0; i < 4; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := c.Renew("web", "10.0.0.1:80", 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := c.Instances("web"); err != nil || len(got) != 1 {
		t.Fatalf("Instances = %v, %v", got, err)
	}

	// Stop heartbeating: the lease lapses server-side.
	time.Sleep(150 * time.Millisecond)
	if _, err := c.Instances("web"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
	if err := c.Renew("web", "10.0.0.1:80", 0); err == nil {
		t.Fatal("renew after expiry should 404")
	}
}

func TestDynamicServerWatchLongPoll(t *testing.T) {
	d := NewDynamic(DynamicOptions{})
	srv, err := NewServer("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	type result struct {
		evs []Event
		v   uint64
		err error
	}
	done := make(chan result, 1)
	go func() {
		evs, v, err := c.WaitEvents(context.Background(), 0)
		done <- result{evs, v, err}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.Register(Instance{Service: "api", Addr: "z:1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.evs) != 1 || r.evs[0].Type != EventJoin || r.evs[0].Instance.Service != "api" {
			t.Fatalf("events = %+v", r.evs)
		}
		if r.v == 0 {
			t.Fatal("version not advanced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned")
	}
}

func TestClientHeartbeatKeepsMemberAlive(t *testing.T) {
	d := NewDynamic(DynamicOptions{})
	srv, err := NewServer("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	stop := c.Heartbeat(Instance{Service: "hb", Addr: "h:1"}, 120*time.Millisecond, 40*time.Millisecond)
	time.Sleep(400 * time.Millisecond) // several TTLs
	if got, err := c.Instances("hb"); err != nil || len(got) != 1 {
		t.Fatalf("heartbeated member gone: %v, %v", got, err)
	}
	stop()
	// Stop deregisters explicitly.
	if _, err := c.Instances("hb"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err after stop = %v, want ErrUnknownService", err)
	}
}

func TestStaticServerRejectsDynamicEndpoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewStatic())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)
	if _, err := c.Members(); err == nil {
		t.Fatal("Members against a static backend should fail")
	}
	if err := c.Renew("a", "x", 0); err == nil {
		t.Fatal("Renew against a static backend should fail")
	}
}
