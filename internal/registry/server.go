package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
)

// Backend is the store a registry Server exposes. *Static implements the
// fixed-table model; *Dynamic adds lease-based membership, and the server
// serves its lease, member, watch, and metrics endpoints as well.
type Backend interface {
	Registry
	Add(in Instance)
	Remove(service, addr string) bool
}

// Server exposes a registry Backend over HTTP for dynamic service
// registration:
//
//	POST   /v1/instances[?ttlMillis=]   register an instance (lease-based
//	                                    when the backend is Dynamic)
//	DELETE /v1/instances?service=&addr= deregister
//	GET    /v1/instances?service=       list a service's instances
//	GET    /v1/services                 list service names
//	GET    /healthz                     liveness probe
//
// Dynamic backends additionally serve:
//
//	POST /v1/renew?service=&addr=&ttlMillis=  heartbeat a lease
//	GET  /v1/members                          live members with lease state
//	GET  /v1/watch?since=N&timeoutMillis=M    long-poll the change feed
//	GET  /metrics                             registry self-metrics
type Server struct {
	reg  Backend
	dyn  *Dynamic // non-nil when reg is lease-based
	http *httpx.Server
}

// NewServer creates and starts a registry server on addr.
func NewServer(addr string, reg Backend) (*Server, error) {
	s := &Server{reg: reg}
	s.dyn, _ = reg.(*Dynamic)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", s.handleRegister)
	mux.HandleFunc("DELETE /v1/instances", s.handleDeregister)
	mux.HandleFunc("GET /v1/instances", s.handleList)
	mux.HandleFunc("GET /v1/services", s.handleServices)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.dyn != nil {
		mux.HandleFunc("POST /v1/renew", s.handleRenew)
		mux.HandleFunc("GET /v1/members", s.handleMembers)
		mux.HandleFunc("GET /v1/watch", s.handleWatch)
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var in Instance
	if err := httpx.ReadJSON(w, r, &in); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.Service == "" || in.Addr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "instance needs service and addr")
		return
	}
	if s.dyn != nil {
		ttl, err := ttlParam(r)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.dyn.Register(in, ttl); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		s.reg.Add(in)
	}
	httpx.WriteJSON(w, http.StatusCreated, in)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	service, addr := r.URL.Query().Get("service"), r.URL.Query().Get("addr")
	if service == "" || addr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "need service and addr query parameters")
		return
	}
	ttl, err := ttlParam(r)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.dyn.Renew(service, addr, ttl); err != nil {
		// The lease is gone: the registrar must re-register, and 404 is
		// the signal heartbeat loops react to.
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "renewed"})
}

func (s *Server) handleMembers(w http.ResponseWriter, _ *http.Request) {
	members := s.dyn.Members()
	if members == nil {
		members = []Member{}
	}
	httpx.WriteJSON(w, http.StatusOK, members)
}

// WatchResponse is one long-poll result: the events after the requested
// cursor and the version to resume from. Resync is set (with empty
// events) when the cursor fell off the bounded event ring and the
// consumer must re-list members before resuming.
type WatchResponse struct {
	Version uint64  `json:"version"`
	Events  []Event `json:"events"`
	Resync  bool    `json:"resync,omitempty"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		since = n
	}
	timeout := 30 * time.Second
	if v := q.Get("timeoutMillis"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpx.WriteError(w, http.StatusBadRequest, "bad timeoutMillis %q", v)
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	events, version, err := s.dyn.WaitEvents(ctx, since)
	switch {
	case err == nil:
	case ctx.Err() != nil:
		// Timed out with no changes: an empty poll, not an error.
		version, events = since, nil
	default:
		// The cursor fell behind the ring; tell the consumer to resync.
		httpx.WriteJSON(w, http.StatusOK, WatchResponse{Version: s.dyn.Version(), Resync: true, Events: []Event{}})
		return
	}
	if events == nil {
		events = []Event{}
	}
	httpx.WriteJSON(w, http.StatusOK, WatchResponse{Version: version, Events: events})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	mw := metrics.NewWriter()
	s.dyn.WriteMetrics(mw)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = mw.WriteTo(w)
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	service, addr := r.URL.Query().Get("service"), r.URL.Query().Get("addr")
	if service == "" || addr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "need service and addr query parameters")
		return
	}
	if !s.reg.Remove(service, addr) {
		httpx.WriteError(w, http.StatusNotFound, "instance %s@%s not registered", service, addr)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": 1})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	if service == "" {
		httpx.WriteError(w, http.StatusBadRequest, "need service query parameter")
		return
	}
	instances, err := s.reg.Instances(service)
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, instances)
}

func (s *Server) handleServices(w http.ResponseWriter, _ *http.Request) {
	services, err := s.reg.Services()
	if err != nil {
		httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if services == nil {
		services = []string{}
	}
	httpx.WriteJSON(w, http.StatusOK, services)
}

// ttlParam parses an optional ?ttlMillis= query parameter (0 = use the
// registry's default TTL).
func ttlParam(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("ttlMillis")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad ttlMillis %q", v)
	}
	return time.Duration(n) * time.Millisecond, nil
}

// Client is a Registry backed by a remote registry Server.
type Client struct {
	baseURL string
	http    *http.Client
}

var _ Registry = (*Client)(nil)

// NewClient creates a registry client. If hc is nil a default client with a
// 10 s timeout is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// Register adds an instance to the remote registry (with the server's
// default lease when it is dynamic).
func (c *Client) Register(in Instance) error {
	return c.RegisterTTL(in, 0)
}

// RegisterTTL adds an instance under an explicit lease TTL. Against a
// static-backed server the TTL is ignored.
func (c *Client) RegisterTTL(in Instance, ttl time.Duration) error {
	b, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("registry: marshal instance: %w", err)
	}
	u := c.baseURL + "/v1/instances"
	if ttl > 0 {
		u += "?ttlMillis=" + strconv.FormatInt(ttl.Milliseconds(), 10)
	}
	resp, err := c.http.Post(u, "application/json", bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("registry: register: %w", err)
	}
	return checkAndClose(resp)
}

// Renew heartbeats an instance's lease. A failed renewal (lease already
// expired server-side) is an error; the instance must re-register.
func (c *Client) Renew(service, addr string, ttl time.Duration) error {
	u := fmt.Sprintf("%s/v1/renew?service=%s&addr=%s",
		c.baseURL, url.QueryEscape(service), url.QueryEscape(addr))
	if ttl > 0 {
		u += "&ttlMillis=" + strconv.FormatInt(ttl.Milliseconds(), 10)
	}
	resp, err := c.http.Post(u, "application/json", nil)
	if err != nil {
		return fmt.Errorf("registry: renew: %w", err)
	}
	return checkAndClose(resp)
}

// Members lists the server's live members with lease bookkeeping
// (dynamic backends only).
func (c *Client) Members() ([]Member, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/members")
	if err != nil {
		return nil, fmt.Errorf("registry: members: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("registry: members: server returned %d (not a lease-based registry?)", resp.StatusCode)
	}
	var out []Member
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("registry: decode members: %w", err)
	}
	return out, nil
}

// WaitEvents long-polls the server's change feed: it blocks (up to the
// server's poll window) until the membership version exceeds since, then
// returns the new events and the version to resume from. A resync signal
// (cursor fell off the ring) is surfaced as ErrWatchGap with the current
// version; the consumer should re-list members and resume from it.
func (c *Client) WaitEvents(ctx context.Context, since uint64) ([]Event, uint64, error) {
	u := fmt.Sprintf("%s/v1/watch?since=%d&timeoutMillis=%d", c.baseURL, since, 30000)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, since, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, since, fmt.Errorf("registry: watch: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, since, fmt.Errorf("registry: watch: server returned %d", resp.StatusCode)
	}
	var wr WatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, since, fmt.Errorf("registry: decode watch: %w", err)
	}
	if wr.Resync {
		return nil, wr.Version, ErrWatchGap
	}
	return wr.Events, wr.Version, nil
}

// Deregister removes an instance from the remote registry.
func (c *Client) Deregister(service, addr string) error {
	u := fmt.Sprintf("%s/v1/instances?service=%s&addr=%s",
		c.baseURL, url.QueryEscape(service), url.QueryEscape(addr))
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("registry: deregister: %w", err)
	}
	return checkAndClose(resp)
}

// Instances implements Registry.
func (c *Client) Instances(service string) ([]Instance, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/instances?service=" + url.QueryEscape(service))
	if err != nil {
		return nil, fmt.Errorf("registry: instances: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("registry: instances: server returned %d", resp.StatusCode)
	}
	var out []Instance
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("registry: decode instances: %w", err)
	}
	return out, nil
}

// Services implements Registry.
func (c *Client) Services() ([]string, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/services")
	if err != nil {
		return nil, fmt.Errorf("registry: services: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("registry: services: server returned %d", resp.StatusCode)
	}
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("registry: decode services: %w", err)
	}
	return out, nil
}

// Heartbeat registers in under a ttl lease and renews it every interval
// until the returned stop function is called (which also deregisters).
// A renewal that finds the lease expired re-registers, so a restarted or
// partitioned-and-healed registry converges back to the full membership.
func (c *Client) Heartbeat(in Instance, ttl, interval time.Duration) (stop func()) {
	_ = c.RegisterTTL(in, ttl)
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				_ = c.Deregister(in.Service, in.Addr)
				return
			case <-t.C:
				if err := c.Renew(in.Service, in.Addr, ttl); err != nil {
					_ = c.RegisterTTL(in, ttl)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-stopped
		})
	}
}

func checkAndClose(resp *http.Response) error {
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("registry: server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	_ = rc.Close()
}
