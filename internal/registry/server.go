package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"gremlin/internal/httpx"
)

// Server exposes a Static registry over HTTP for dynamic service
// registration:
//
//	POST   /v1/instances                register an instance
//	DELETE /v1/instances?service=&addr= deregister
//	GET    /v1/instances?service=       list a service's instances
//	GET    /v1/services                 list service names
//	GET    /healthz                     liveness probe
type Server struct {
	reg  *Static
	http *httpx.Server
}

// NewServer creates and starts a registry server on addr.
func NewServer(addr string, reg *Static) (*Server, error) {
	s := &Server{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", s.handleRegister)
	mux.HandleFunc("DELETE /v1/instances", s.handleDeregister)
	mux.HandleFunc("GET /v1/instances", s.handleList)
	mux.HandleFunc("GET /v1/services", s.handleServices)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var in Instance
	if err := httpx.ReadJSON(w, r, &in); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.Service == "" || in.Addr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "instance needs service and addr")
		return
	}
	s.reg.Add(in)
	httpx.WriteJSON(w, http.StatusCreated, in)
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	service, addr := r.URL.Query().Get("service"), r.URL.Query().Get("addr")
	if service == "" || addr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "need service and addr query parameters")
		return
	}
	if !s.reg.Remove(service, addr) {
		httpx.WriteError(w, http.StatusNotFound, "instance %s@%s not registered", service, addr)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": 1})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	if service == "" {
		httpx.WriteError(w, http.StatusBadRequest, "need service query parameter")
		return
	}
	instances, err := s.reg.Instances(service)
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, instances)
}

func (s *Server) handleServices(w http.ResponseWriter, _ *http.Request) {
	services, err := s.reg.Services()
	if err != nil {
		httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if services == nil {
		services = []string{}
	}
	httpx.WriteJSON(w, http.StatusOK, services)
}

// Client is a Registry backed by a remote registry Server.
type Client struct {
	baseURL string
	http    *http.Client
}

var _ Registry = (*Client)(nil)

// NewClient creates a registry client. If hc is nil a default client with a
// 10 s timeout is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// Register adds an instance to the remote registry.
func (c *Client) Register(in Instance) error {
	b, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("registry: marshal instance: %w", err)
	}
	resp, err := c.http.Post(c.baseURL+"/v1/instances", "application/json", bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("registry: register: %w", err)
	}
	return checkAndClose(resp)
}

// Deregister removes an instance from the remote registry.
func (c *Client) Deregister(service, addr string) error {
	u := fmt.Sprintf("%s/v1/instances?service=%s&addr=%s",
		c.baseURL, url.QueryEscape(service), url.QueryEscape(addr))
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("registry: deregister: %w", err)
	}
	return checkAndClose(resp)
}

// Instances implements Registry.
func (c *Client) Instances(service string) ([]Instance, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/instances?service=" + url.QueryEscape(service))
	if err != nil {
		return nil, fmt.Errorf("registry: instances: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("registry: instances: server returned %d", resp.StatusCode)
	}
	var out []Instance
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("registry: decode instances: %w", err)
	}
	return out, nil
}

// Services implements Registry.
func (c *Client) Services() ([]string, error) {
	resp, err := c.http.Get(c.baseURL + "/v1/services")
	if err != nil {
		return nil, fmt.Errorf("registry: services: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("registry: services: server returned %d", resp.StatusCode)
	}
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("registry: decode services: %w", err)
	}
	return out, nil
}

func checkAndClose(resp *http.Response) error {
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("registry: server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	_ = rc.Close()
}
