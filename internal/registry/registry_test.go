package registry

import (
	"errors"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestStaticAddInstancesServices(t *testing.T) {
	r := NewStatic(
		Instance{Service: "a", Addr: "1.1.1.1:80", AgentControlURL: "http://1.1.1.1:9000"},
		Instance{Service: "a", Addr: "1.1.1.2:80", AgentControlURL: "http://1.1.1.2:9000"},
		Instance{Service: "b", Addr: "1.1.2.1:80"},
	)
	got, err := r.Instances("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Instances(a) = %d, want 2", len(got))
	}
	services, err := r.Services()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(services, want) {
		t.Fatalf("Services = %v", services)
	}
}

func TestStaticUnknownService(t *testing.T) {
	r := NewStatic()
	if _, err := r.Instances("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestStaticAddReplacesSameAddr(t *testing.T) {
	r := NewStatic()
	r.Add(Instance{Service: "a", Addr: "x:1", AgentControlURL: "http://old"})
	r.Add(Instance{Service: "a", Addr: "x:1", AgentControlURL: "http://new"})
	got, err := r.Instances("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AgentControlURL != "http://new" {
		t.Fatalf("got %+v", got)
	}
}

func TestStaticRemove(t *testing.T) {
	r := NewStatic(Instance{Service: "a", Addr: "x:1"})
	if !r.Remove("a", "x:1") {
		t.Fatal("Remove = false")
	}
	if r.Remove("a", "x:1") {
		t.Fatal("second Remove = true")
	}
	if _, err := r.Instances("a"); !errors.Is(err, ErrUnknownService) {
		t.Fatal("service with no instances should be unknown")
	}
}

func TestStaticInstancesCopy(t *testing.T) {
	r := NewStatic(Instance{Service: "a", Addr: "x:1"})
	got, err := r.Instances("a")
	if err != nil {
		t.Fatal(err)
	}
	got[0].Addr = "mutated"
	again, err := r.Instances("a")
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Addr != "x:1" {
		t.Fatal("Instances leaked internal state")
	}
}

func TestStaticConcurrent(t *testing.T) {
	r := NewStatic()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := Instance{Service: "svc", Addr: string(rune('a'+w)) + ":1"}
			for i := 0; i < 100; i++ {
				r.Add(in)
				_, _ = r.Instances("svc")
				_, _ = r.Services()
			}
		}(w)
	}
	wg.Wait()
	got, err := r.Instances("svc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d instances, want 8", len(got))
	}
}

func TestZeroValueStaticUsable(t *testing.T) {
	var r Static
	r.Add(Instance{Service: "a", Addr: "x:1"})
	if _, err := r.Instances("a"); err != nil {
		t.Fatal(err)
	}
}

func TestAgentURLs(t *testing.T) {
	r := NewStatic(
		Instance{Service: "a", Addr: "x:1", AgentControlURL: "http://agent1"},
		Instance{Service: "a", Addr: "x:2", AgentControlURL: "http://agent1"}, // shared agent
		Instance{Service: "a", Addr: "x:3", AgentControlURL: "http://agent2"},
		Instance{Service: "a", Addr: "x:4"}, // agentless
	)
	urls, err := AgentURLs(r, "a")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://agent1", "http://agent2"}; !reflect.DeepEqual(urls, want) {
		t.Fatalf("AgentURLs = %v", urls)
	}
	if _, err := AgentURLs(r, "ghost"); err == nil {
		t.Fatal("want error")
	}
}

func TestAllAgentURLs(t *testing.T) {
	r := NewStatic(
		Instance{Service: "a", Addr: "x:1", AgentControlURL: "http://agent1"},
		Instance{Service: "b", Addr: "x:2", AgentControlURL: "http://agent2"},
		Instance{Service: "c", Addr: "x:3", AgentControlURL: "http://agent1"},
	)
	urls, err := AllAgentURLs(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"http://agent1", "http://agent2"}; !reflect.DeepEqual(urls, want) {
		t.Fatalf("AllAgentURLs = %v", urls)
	}
}

func newRegServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", NewStatic())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, NewClient(srv.URL(), nil)
}

func TestServerRegisterListDeregister(t *testing.T) {
	_, c := newRegServer(t)
	in := Instance{Service: "web", Addr: "10.0.0.1:8080", AgentControlURL: "http://10.0.0.1:9000"}
	if err := c.Register(in); err != nil {
		t.Fatal(err)
	}
	got, err := c.Instances("web")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != in {
		t.Fatalf("got %+v", got)
	}
	services, err := c.Services()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(services, []string{"web"}) {
		t.Fatalf("Services = %v", services)
	}
	if err := c.Deregister("web", "10.0.0.1:8080"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Instances("web"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
	if err := c.Deregister("web", "10.0.0.1:8080"); err == nil {
		t.Fatal("double deregister should error")
	}
}

func TestServerRejectsBadRegistration(t *testing.T) {
	_, c := newRegServer(t)
	if err := c.Register(Instance{Service: "", Addr: "x"}); err == nil {
		t.Fatal("want error for empty service")
	}
	if err := c.Register(Instance{Service: "x", Addr: ""}); err == nil {
		t.Fatal("want error for empty addr")
	}
}

func TestServerEmptyServices(t *testing.T) {
	_, c := newRegServer(t)
	services, err := c.Services()
	if err != nil {
		t.Fatal(err)
	}
	if len(services) != 0 {
		t.Fatalf("Services = %v", services)
	}
}

func TestClientAgainstDownServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if err := c.Register(Instance{Service: "a", Addr: "x"}); err == nil {
		t.Fatal("Register should fail")
	}
	if err := c.Deregister("a", "x"); err == nil {
		t.Fatal("Deregister should fail")
	}
	if _, err := c.Instances("a"); err == nil {
		t.Fatal("Instances should fail")
	}
	if _, err := c.Services(); err == nil {
		t.Fatal("Services should fail")
	}
}
