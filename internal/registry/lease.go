package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gremlin/internal/metrics"
)

// EventType classifies a membership change.
type EventType string

const (
	// EventJoin is a first registration of a (service, addr) pair.
	EventJoin EventType = "join"

	// EventUpdate is a re-registration that changed the instance's
	// content (new agent URL, new health state, ...). Pure lease renewals
	// emit no event.
	EventUpdate EventType = "update"

	// EventLeave is an explicit deregistration.
	EventLeave EventType = "leave"

	// EventExpire is a lease that lapsed without renewal.
	EventExpire EventType = "expire"
)

// Event is one membership change, observable through Watch/WaitEvents.
type Event struct {
	// Seq is the membership version this event produced; versions are
	// strictly increasing, so consumers resume with since=Seq.
	Seq uint64 `json:"seq"`

	// Type classifies the change.
	Type EventType `json:"type"`

	// Instance is the member the change concerns.
	Instance Instance `json:"instance"`

	// Time is when the change was recorded.
	Time time.Time `json:"time"`
}

// Member is one live instance together with its lease bookkeeping.
type Member struct {
	Instance

	// RegisteredAt is when the instance first joined.
	RegisteredAt time.Time `json:"registeredAt"`

	// RenewedAt is the last heartbeat (or the registration itself).
	RenewedAt time.Time `json:"renewedAt"`

	// Expires is when the lease lapses unless renewed.
	Expires time.Time `json:"expires"`
}

// LeaseAge returns how long ago the member last heartbeated.
func (m Member) LeaseAge(now time.Time) time.Duration { return now.Sub(m.RenewedAt) }

// DynamicOptions configures a Dynamic registry.
type DynamicOptions struct {
	// DefaultTTL is the lease applied when Register gets ttl <= 0.
	// Defaults to 10 s.
	DefaultTTL time.Duration

	// MaxEvents bounds the replayable event ring for Watch consumers
	// (default 1024). A consumer that falls further behind is told to
	// resync from a full listing.
	MaxEvents int

	// Now overrides the clock, for tests. Nil uses time.Now.
	Now func() time.Time
}

// Dynamic is a lease-based membership registry: instances register with a
// TTL, renew via heartbeats, and expire server-side when the heartbeats
// stop — the "living fleet" the orchestrator's discovery-driven reconcile
// and the telemetry scraper consume. It implements Registry; reads only
// ever observe live (unexpired) members.
type Dynamic struct {
	opts DynamicOptions

	mu      sync.Mutex
	members map[string]map[string]*Member // service -> addr -> member
	version uint64
	events  []Event // ring of the most recent MaxEvents changes
	wake    chan struct{}

	// Cumulative counters for WriteMetrics.
	nRegistrations int64
	nRenewals      int64
	nExpirations   int64
	nLeaves        int64
}

var _ Registry = (*Dynamic)(nil)

// NewDynamic creates an empty lease-based registry.
func NewDynamic(opts DynamicOptions) *Dynamic {
	if opts.DefaultTTL <= 0 {
		opts.DefaultTTL = 10 * time.Second
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 1024
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Dynamic{
		opts:    opts,
		members: make(map[string]map[string]*Member),
		wake:    make(chan struct{}),
	}
}

// Register adds or refreshes an instance under a lease of ttl (DefaultTTL
// when ttl <= 0). Re-registering an existing (service, addr) pair replaces
// the previous entry and renews its lease — never a second member, so a
// restarted instance cannot double-count in orchestrator fan-out.
func (d *Dynamic) Register(in Instance, ttl time.Duration) error {
	if in.Service == "" || in.Addr == "" {
		return fmt.Errorf("registry: register needs service and addr, got %+v", in)
	}
	if ttl <= 0 {
		ttl = d.opts.DefaultTTL
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.Now()
	d.expireLocked(now)
	byAddr := d.members[in.Service]
	if byAddr == nil {
		byAddr = make(map[string]*Member)
		d.members[in.Service] = byAddr
	}
	d.nRegistrations++
	if m, ok := byAddr[in.Addr]; ok {
		changed := m.Instance != in
		m.Instance = in
		m.RenewedAt = now
		m.Expires = now.Add(ttl)
		if changed {
			d.emitLocked(EventUpdate, in, now)
		}
		return nil
	}
	byAddr[in.Addr] = &Member{Instance: in, RegisteredAt: now, RenewedAt: now, Expires: now.Add(ttl)}
	d.emitLocked(EventJoin, in, now)
	return nil
}

// Renew extends a live member's lease by ttl (DefaultTTL when ttl <= 0).
// Renewing an unknown or already-expired member fails — the instance must
// re-register, so consumers always see its return as a join.
func (d *Dynamic) Renew(service, addr string, ttl time.Duration) error {
	if ttl <= 0 {
		ttl = d.opts.DefaultTTL
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.Now()
	d.expireLocked(now)
	m := d.members[service][addr]
	if m == nil {
		return fmt.Errorf("registry: renew %s@%s: no live lease (re-register)", service, addr)
	}
	m.RenewedAt = now
	m.Expires = now.Add(ttl)
	d.nRenewals++
	return nil
}

// Deregister removes an instance explicitly, reporting whether it was
// live.
func (d *Dynamic) Deregister(service, addr string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.Now()
	d.expireLocked(now)
	m := d.members[service][addr]
	if m == nil {
		return false
	}
	delete(d.members[service], addr)
	if len(d.members[service]) == 0 {
		delete(d.members, service)
	}
	d.nLeaves++
	d.emitLocked(EventLeave, m.Instance, now)
	return true
}

// Add implements the Server backend: Register with the default TTL.
func (d *Dynamic) Add(in Instance) { _ = d.Register(in, 0) }

// Remove implements the Server backend: an explicit Deregister.
func (d *Dynamic) Remove(service, addr string) bool { return d.Deregister(service, addr) }

// Instances implements Registry over the live members.
func (d *Dynamic) Instances(service string) ([]Instance, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(d.opts.Now())
	byAddr := d.members[service]
	if len(byAddr) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	out := make([]Instance, 0, len(byAddr))
	for _, m := range byAddr {
		out = append(out, m.Instance)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Addr < out[j].Addr
	})
	return out, nil
}

// Services implements Registry over the live members.
func (d *Dynamic) Services() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(d.opts.Now())
	names := make([]string, 0, len(d.members))
	for n := range d.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Members returns every live member with its lease bookkeeping, sorted by
// service, then replica, then address.
func (d *Dynamic) Members() []Member {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(d.opts.Now())
	var out []Member
	for _, byAddr := range d.members {
		for _, m := range byAddr {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Version returns the current membership version; it increases with every
// join, content update, leave, and expiry.
func (d *Dynamic) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(d.opts.Now())
	return d.version
}

// Sweep expires lapsed leases eagerly (reads already never observe them)
// so their expire events reach watchers promptly. It returns how many
// leases lapsed.
func (d *Dynamic) Sweep() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.expireLocked(d.opts.Now())
}

// StartSweeper expires lapsed leases every interval until the returned
// stop function is called.
func (d *Dynamic) StartSweeper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				d.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-stopped
		})
	}
}

// ErrWatchGap is returned (wrapped) by WaitEvents when the requested
// cursor has fallen off the bounded event ring; the consumer must resync
// from a full Members listing.
var ErrWatchGap = fmt.Errorf("registry: watch cursor fell behind the event ring")

// WaitEvents blocks until the membership version exceeds since (or ctx is
// done), then returns the events after since and the new version to resume
// from. A zero since starts at the current version without replay when no
// events are buffered past it. Consumers that fall behind the bounded ring
// get ErrWatchGap and must resync.
func (d *Dynamic) WaitEvents(ctx context.Context, since uint64) ([]Event, uint64, error) {
	for {
		d.mu.Lock()
		d.expireLocked(d.opts.Now())
		if d.version > since {
			evs, err := d.eventsAfterLocked(since)
			version := d.version
			d.mu.Unlock()
			return evs, version, err
		}
		wake := d.wake
		d.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, since, ctx.Err()
		case <-wake:
		}
	}
}

// eventsAfterLocked returns buffered events with Seq > since, or
// ErrWatchGap when the ring no longer reaches back that far.
func (d *Dynamic) eventsAfterLocked(since uint64) ([]Event, error) {
	if len(d.events) > 0 && d.events[0].Seq > since+1 {
		return nil, fmt.Errorf("%w: need events after %d, ring starts at %d", ErrWatchGap, since, d.events[0].Seq)
	}
	var out []Event
	for _, e := range d.events {
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out, nil
}

// emitLocked records a membership change and wakes blocked watchers.
func (d *Dynamic) emitLocked(typ EventType, in Instance, now time.Time) {
	d.version++
	d.events = append(d.events, Event{Seq: d.version, Type: typ, Instance: in, Time: now})
	if n := len(d.events) - d.opts.MaxEvents; n > 0 {
		d.events = append(d.events[:0], d.events[n:]...)
	}
	close(d.wake)
	d.wake = make(chan struct{})
}

// expireLocked drops members whose lease lapsed, emitting expire events.
func (d *Dynamic) expireLocked(now time.Time) int {
	expired := 0
	for svc, byAddr := range d.members {
		for addr, m := range byAddr {
			if now.After(m.Expires) {
				delete(byAddr, addr)
				expired++
				d.nExpirations++
				d.emitLocked(EventExpire, m.Instance, now)
			}
		}
		if len(byAddr) == 0 {
			delete(d.members, svc)
		}
	}
	return expired
}

// WriteMetrics appends the registry's membership gauges and lease
// counters to w in Prometheus exposition format.
func (d *Dynamic) WriteMetrics(w *metrics.Writer) {
	d.mu.Lock()
	d.expireLocked(d.opts.Now())
	perService := make(map[string]int, len(d.members))
	total := 0
	for svc, byAddr := range d.members {
		perService[svc] = len(byAddr)
		total += len(byAddr)
	}
	version := d.version
	regs, renews, exps, leaves := d.nRegistrations, d.nRenewals, d.nExpirations, d.nLeaves
	d.mu.Unlock()

	w.Gauge("gremlin_registry_instances",
		"Live (unexpired) instances currently registered.", float64(total))
	w.Gauge("gremlin_registry_services",
		"Logical services with at least one live instance.", float64(len(perService)))
	w.Gauge("gremlin_registry_version",
		"Membership version; increases with every join, update, leave, and expiry.", float64(version))
	w.Counter("gremlin_registry_registrations_total",
		"Register calls accepted (including re-registrations).", float64(regs))
	w.Counter("gremlin_registry_renewals_total",
		"Lease heartbeats accepted.", float64(renews))
	w.Counter("gremlin_registry_expirations_total",
		"Leases that lapsed without renewal.", float64(exps))
	w.Counter("gremlin_registry_leaves_total",
		"Explicit deregistrations.", float64(leaves))
	names := make([]string, 0, len(perService))
	for n := range perService {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w.Gauge("gremlin_registry_service_instances",
			"Live instances per logical service.", float64(perService[n]), "service", n)
	}
}
