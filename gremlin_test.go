package gremlin_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/topology"
)

// TestPublicAPIEndToEnd drives the whole framework exclusively through the
// root package: build agents and a registry by hand, run a recipe, check
// the report — the integration a downstream user would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	app, err := topology.Build(withSeed(topology.TwoServices(5, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()

	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
	recipe := gremlin.Recipe{
		Name:      "public-api",
		Scenarios: []gremlin.Scenario{gremlin.Overload{Service: "serviceB", AbortFraction: 1}},
		Checks:    []gremlin.Check{gremlin.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}
	report, err := runner.Run(context.Background(), recipe, gremlin.RunOptions{
		ClearLogs: true,
		Load: func() error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 1})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("report:\n%s", report)
	}
}

func withSeed(s topology.Spec) topology.Spec {
	s.RNG = rand.New(rand.NewSource(99))
	return s
}

// TestPublicAPIStoreRoundTrip exercises the re-exported event-store pieces.
func TestPublicAPIStoreRoundTrip(t *testing.T) {
	store := gremlin.NewStore()
	srv, err := gremlin.NewStoreServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	}()
	client := gremlin.NewStoreClient(srv.URL())
	if err := client.Log(gremlin.Record{Src: "a", Dst: "b", Kind: gremlin.KindRequest, RequestID: "test-1"}); err != nil {
		t.Fatal(err)
	}
	recs, err := client.Select(gremlin.Query{Src: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}

	// The checker works against the remote store too.
	c := gremlin.NewChecker(client)
	rl, err := c.GetRequests("a", "b", "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 {
		t.Fatalf("RList = %d", len(rl))
	}
}

// TestPublicAPIAgent exercises a hand-built agent through the facade.
func TestPublicAPIAgent(t *testing.T) {
	store := gremlin.NewStore()
	backend, err := gremlin.NewStoreServer("127.0.0.1:0", store) // any HTTP server works as a target
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := backend.Close(); err != nil {
			t.Error(err)
		}
	}()

	agent, err := gremlin.NewAgent(gremlin.AgentConfig{
		ServiceName: "client",
		ControlAddr: "127.0.0.1:0",
		Routes: []gremlin.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{backend.URL()[len("http://"):]},
		}},
		Sink: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	defer func() {
		if err := agent.Close(); err != nil {
			t.Error(err)
		}
	}()

	ctl := gremlin.NewAgentClient(agent.ControlURL())
	if err := ctl.InstallRules(context.Background(), gremlin.Rule{
		ID: "r1", Src: "client", Dst: "server",
		Action: gremlin.ActionAbort, Pattern: gremlin.DefaultPattern, ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}
	list, err := ctl.ListRules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "r1" {
		t.Fatalf("rules = %+v", list)
	}
}

// TestPublicAPIGraph exercises the graph facade.
func TestPublicAPIGraph(t *testing.T) {
	g := gremlin.NewGraph()
	g.AddEdge("a", "b")
	g2 := gremlin.GraphFromEdges(g.Edges())
	if !g2.HasEdge("a", "b") {
		t.Fatal("round trip lost the edge")
	}
	reg := gremlin.NewRegistry(gremlin.Instance{Service: "a", Addr: "x:1"})
	if _, err := reg.Instances("a"); err != nil {
		t.Fatal(err)
	}
}

// TestShippedRecipeFilesParse keeps the sample recipe files in
// examples/recipes/ loadable by gremlin-ctl run.
func TestShippedRecipeFilesParse(t *testing.T) {
	files, err := filepath.Glob("examples/recipes/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no sample recipes found")
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r, err := gremlin.ParseRecipe(raw)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if r.Name == "" || len(r.Scenarios) == 0 {
			t.Fatalf("%s: incomplete recipe %+v", f, r)
		}
	}
}

// TestShippedAgentConfigParses keeps the example agent config valid.
func TestShippedAgentConfigParses(t *testing.T) {
	raw, err := os.ReadFile("cmd/gremlin-agent/agent.example.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		Service string          `json:"service"`
		AgentID string          `json:"agentId"`
		Control string          `json:"control"`
		Store   string          `json:"logstore"`
		Routes  []gremlin.Route `json:"routes"`
	}
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if err := (gremlin.AgentConfig{ServiceName: cfg.Service, Routes: cfg.Routes}).Validate(); err != nil {
		t.Fatalf("example config invalid: %v", err)
	}
}
